// Package webcorpus synthesises the multi-site Web corpus of the paper's
// experiment (Section 8) and evolves it over time. The paper crawled 154
// real Web sites four times between December 2002 and June 2003; this
// package substitutes a synthetic Web whose link evolution is *driven by
// the paper's own user-visitation model*: every page has a ground-truth
// intrinsic quality Q(p), visits arrive in proportion to current
// popularity (Proposition 1), visitors are uniformly random users
// (Proposition 2), and a user who discovers a page links to it with
// probability Q(p). On top of the clean model the corpus supports the
// §9.1 realism extensions the paper observed in its data: forgetting
// (decreasing popularity), link-churn noise (fluctuating PageRanks) and
// continuous page births.
//
// Because every page's true quality is known by construction, experiments
// can evaluate the estimator against ground truth — something the paper's
// real crawl could only approximate with future PageRank.
package webcorpus

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"pagequality/internal/graph"
	"pagequality/internal/snapshot"
)

// Config parameterises a corpus simulation. The zero value is invalid; use
// DefaultConfig as a starting point.
type Config struct {
	// Sites is the number of Web sites (the paper used 154).
	Sites int
	// InitialPagesPerSite is the mean number of pages per site at the
	// start of the burn-in period (actual counts vary ±50%).
	InitialPagesPerSite int
	// Users is n, the size of the simulated user population.
	Users int
	// VisitRate is r: a page with popularity P receives r·P visits per
	// week. r = Users gives the logistic growth rate (r/n)·Q = Q per week.
	VisitRate float64
	// LinkProb is the probability that a user who likes a page actually
	// publishes a link to it (thins the link graph without changing the
	// proportionality that the estimator relies on).
	LinkProb float64
	// SameSiteBias is the probability that a new link originates from a
	// page on the same site (intra-site links dominated the paper's
	// site-restricted crawl).
	SameSiteBias float64
	// QualityAlpha/QualityBeta shape the Beta(α,β) distribution from which
	// page qualities are drawn.
	QualityAlpha, QualityBeta float64
	// BirthRate is the number of new pages born per week across the corpus
	// (Poisson).
	BirthRate float64
	// ForgetRate is the §9.1 per-user forgetting rate per week (0 = the
	// paper's clean model).
	ForgetRate float64
	// NoiseRate adds link churn uncorrelated with quality: per week, a
	// Poisson(NoiseRate · pages) number of random single-link
	// additions/removals. This is what makes some PageRanks fluctuate the
	// way the paper observed.
	NoiseRate float64
	// DT is the simulation step in weeks (default 0.25).
	DT float64
	// BurnInWeeks ages the corpus before t=0 so that the crawl window
	// sees pages in all three life stages.
	BurnInWeeks float64
	// Seed makes the corpus deterministic.
	Seed int64
}

// DefaultConfig returns a laptop-scale configuration mirroring the paper's
// setup: 154 sites, pages in all life stages at the first crawl, and four
// snapshots on the Figure-4 timeline.
func DefaultConfig() Config {
	return Config{
		Sites:               154,
		InitialPagesPerSite: 10,
		Users:               20000,
		VisitRate:           20000,
		LinkProb:            0.02,
		SameSiteBias:        0.5,
		QualityAlpha:        2,
		QualityBeta:         3,
		BirthRate:           8,
		ForgetRate:          0.01,
		NoiseRate:           0.02,
		DT:                  0.25,
		BurnInWeeks:         30,
		Seed:                1,
	}
}

// ErrBadConfig reports invalid corpus configuration.
var ErrBadConfig = errors.New("webcorpus: bad config")

func (c *Config) fill() error {
	if c.DT == 0 {
		c.DT = 0.25
	}
	switch {
	case c.Sites < 1:
		return fmt.Errorf("%w: Sites=%d", ErrBadConfig, c.Sites)
	case c.InitialPagesPerSite < 1:
		return fmt.Errorf("%w: InitialPagesPerSite=%d", ErrBadConfig, c.InitialPagesPerSite)
	case c.Users < 10:
		return fmt.Errorf("%w: Users=%d", ErrBadConfig, c.Users)
	case c.VisitRate <= 0:
		return fmt.Errorf("%w: VisitRate=%g", ErrBadConfig, c.VisitRate)
	case c.LinkProb <= 0 || c.LinkProb > 1:
		return fmt.Errorf("%w: LinkProb=%g", ErrBadConfig, c.LinkProb)
	case c.SameSiteBias < 0 || c.SameSiteBias > 1:
		return fmt.Errorf("%w: SameSiteBias=%g", ErrBadConfig, c.SameSiteBias)
	case c.QualityAlpha <= 0 || c.QualityBeta <= 0:
		return fmt.Errorf("%w: quality Beta(%g,%g)", ErrBadConfig, c.QualityAlpha, c.QualityBeta)
	case c.BirthRate < 0:
		return fmt.Errorf("%w: BirthRate=%g", ErrBadConfig, c.BirthRate)
	case c.ForgetRate < 0:
		return fmt.Errorf("%w: ForgetRate=%g", ErrBadConfig, c.ForgetRate)
	case c.NoiseRate < 0:
		return fmt.Errorf("%w: NoiseRate=%g", ErrBadConfig, c.NoiseRate)
	case c.DT <= 0:
		return fmt.Errorf("%w: DT=%g", ErrBadConfig, c.DT)
	case c.BurnInWeeks < 0:
		return fmt.Errorf("%w: BurnInWeeks=%g", ErrBadConfig, c.BurnInWeeks)
	}
	return nil
}

// Sim is a running corpus simulation. The underlying graph only ever
// grows nodes (pages are never deleted, matching a crawler that keeps
// seeing the same URLs); links come and go.
type Sim struct {
	cfg Config
	rng *rand.Rand
	g   *graph.Graph
	// Per-page state, indexed by NodeID.
	aware []float64 // number of users aware of the page
	likes []float64 // number of users who like the page (popularity × n)
	// sitePages[s] lists the pages of site s (link-source sampling).
	sitePages [][]graph.NodeID
	time      float64
	pageSeq   int
}

// New builds the corpus, runs the burn-in, and leaves the simulation at
// t = 0 ready for the snapshot schedule.
func New(cfg Config) (*Sim, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		g:         graph.New(cfg.Sites * cfg.InitialPagesPerSite * 2),
		sitePages: make([][]graph.NodeID, cfg.Sites),
		time:      -cfg.BurnInWeeks,
	}
	for site := 0; site < cfg.Sites; site++ {
		n := cfg.InitialPagesPerSite/2 + s.rng.Intn(cfg.InitialPagesPerSite+1)
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			// Stagger creation across the burn-in window so the corpus
			// contains pages of every age.
			created := -cfg.BurnInWeeks * s.rng.Float64()
			s.birthPage(site, created)
		}
	}
	// Burn-in: advance to t = 0.
	if cfg.BurnInWeeks > 0 {
		s.AdvanceTo(0)
	}
	return s, nil
}

// BirthPage inserts one page with a chosen quality on the given site at
// the current simulation time, returning its node id. It is the hook for
// scenario building (e.g. injecting a known high-quality newcomer);
// the regular birth process draws its quality from the Beta distribution
// instead.
func (s *Sim) BirthPage(site int, q float64) (graph.NodeID, error) {
	if site < 0 || site >= s.cfg.Sites {
		return graph.InvalidNode, fmt.Errorf("%w: site %d outside [0,%d)", ErrBadConfig, site, s.cfg.Sites)
	}
	if !(q > 0 && q <= 1) {
		return graph.InvalidNode, fmt.Errorf("%w: quality %g outside (0,1]", ErrBadConfig, q)
	}
	return s.birthPageQ(site, s.time, q), nil
}

// birthPage creates one page on the given site with a Beta-distributed
// quality and one seed user who likes it.
func (s *Sim) birthPage(site int, created float64) graph.NodeID {
	q := betaSample(s.rng, s.cfg.QualityAlpha, s.cfg.QualityBeta)
	// Clamp away from 0 so the page can be visited at all (P0 = 1/n > 0).
	if q < 0.01 {
		q = 0.01
	}
	return s.birthPageQ(site, created, q)
}

func (s *Sim) birthPageQ(site int, created, q float64) graph.NodeID {
	url := fmt.Sprintf("http://site%03d.example/page%06d", site, s.pageSeq)
	s.pageSeq++
	id := s.g.MustAddPage(graph.Page{
		URL:     url,
		Site:    int32(site),
		Created: created,
		Quality: q,
	})
	s.aware = append(s.aware, 1)
	s.likes = append(s.likes, 1)
	s.sitePages[site] = append(s.sitePages[site], id)
	// The seed liker publishes the page's first in-link.
	s.createLinkTo(id)
	return id
}

// createLinkTo adds one in-link to page p from a source chosen with the
// configured same-site bias; duplicates and self-links are silently
// skipped after a few attempts (the like still counts — the user simply
// linked to a page that already linked there).
func (s *Sim) createLinkTo(p graph.NodeID) {
	site := int(s.g.Page(p).Site)
	for attempt := 0; attempt < 8; attempt++ {
		var from graph.NodeID
		if s.rng.Float64() < s.cfg.SameSiteBias && len(s.sitePages[site]) > 1 {
			cand := s.sitePages[site]
			from = cand[s.rng.Intn(len(cand))]
		} else {
			from = graph.NodeID(s.rng.Intn(s.g.NumNodes()))
		}
		if from == p {
			continue
		}
		if s.g.AddLink(from, p) {
			return
		}
	}
}

// removeLinkTo removes one random in-link of p, if any.
func (s *Sim) removeLinkTo(p graph.NodeID) {
	in := s.g.InLinks(p)
	if len(in) == 0 {
		return
	}
	from := in[s.rng.Intn(len(in))]
	s.g.RemoveLink(from, p)
}

// Time returns the current simulation time in weeks (0 = first crawl).
func (s *Sim) Time() float64 { return s.time }

// NumPages returns the current page count.
func (s *Sim) NumPages() int { return s.g.NumNodes() }

// NumLinks returns the current link count.
func (s *Sim) NumLinks() int { return s.g.NumEdges() }

// Popularity returns the current popularity P(p,t) = likes/n of page p.
func (s *Sim) Popularity(p graph.NodeID) float64 {
	return s.likes[p] / float64(s.cfg.Users)
}

// Quality returns the ground-truth quality of page p.
func (s *Sim) Quality(p graph.NodeID) float64 {
	return s.g.Page(p).Quality
}

// Graph exposes the live graph for inspection. Callers must not mutate it;
// use SnapshotNow for a stable copy.
func (s *Sim) Graph() *graph.Graph { return s.g }

// step advances one DT tick.
func (s *Sim) step() {
	cfg := &s.cfg
	n := float64(cfg.Users)
	// Page visits, discoveries, likes, links.
	for p := 0; p < s.g.NumNodes(); p++ {
		id := graph.NodeID(p)
		pop := s.likes[p] / n
		if pop <= 0 {
			continue
		}
		visits := poisson(s.rng, cfg.VisitRate*pop*cfg.DT)
		if visits == 0 {
			continue
		}
		q := s.g.Page(id).Quality
		unawareFrac := 1 - s.aware[p]/n
		if unawareFrac < 0 {
			unawareFrac = 0
		}
		// Each visit lands on an unaware user with prob unawareFrac
		// (random-visit hypothesis); thin the Poisson instead of looping
		// when visit counts are large.
		discoveries := binomial(s.rng, visits, unawareFrac)
		if discoveries == 0 {
			continue
		}
		s.aware[p] += float64(discoveries)
		newLikes := binomial(s.rng, discoveries, q)
		s.likes[p] += float64(newLikes)
		links := binomial(s.rng, newLikes, cfg.LinkProb)
		for k := 0; k < links; k++ {
			s.createLinkTo(id)
		}
	}
	// Forgetting (§9.1): aware users forget; forgetting likers withdraw
	// their links.
	if cfg.ForgetRate > 0 {
		for p := 0; p < s.g.NumNodes(); p++ {
			if s.aware[p] <= 1 {
				continue
			}
			forgets := poisson(s.rng, cfg.ForgetRate*s.aware[p]*cfg.DT)
			for k := 0; k < forgets && s.aware[p] > 1; k++ {
				likerFrac := s.likes[p] / s.aware[p]
				s.aware[p]--
				if s.rng.Float64() < likerFrac && s.likes[p] > 1 {
					s.likes[p]--
					if s.rng.Float64() < cfg.LinkProb {
						s.removeLinkTo(graph.NodeID(p))
					}
				}
			}
		}
	}
	// Uncorrelated link churn (fluctuation noise).
	if cfg.NoiseRate > 0 {
		events := poisson(s.rng, cfg.NoiseRate*float64(s.g.NumNodes())*cfg.DT)
		for k := 0; k < events; k++ {
			p := graph.NodeID(s.rng.Intn(s.g.NumNodes()))
			if s.rng.Float64() < 0.5 {
				s.createLinkTo(p)
			} else {
				s.removeLinkTo(p)
			}
		}
	}
	// Page births.
	if cfg.BirthRate > 0 {
		births := poisson(s.rng, cfg.BirthRate*cfg.DT)
		for k := 0; k < births; k++ {
			site := s.rng.Intn(cfg.Sites)
			s.birthPage(site, s.time)
		}
	}
	s.time += cfg.DT
}

// AdvanceTo steps the simulation until the clock reaches t.
func (s *Sim) AdvanceTo(t float64) {
	for s.time < t-1e-9 {
		s.step()
	}
}

// SnapshotNow captures a deep copy of the current graph as a crawl
// snapshot.
func (s *Sim) SnapshotNow(label string) snapshot.Snapshot {
	return snapshot.Snapshot{Label: label, Time: s.time, Graph: s.g.Clone()}
}

// RunSchedule advances through the schedule, capturing one snapshot per
// entry. Times are in weeks relative to t = 0 and must be non-decreasing
// and not in the past.
func (s *Sim) RunSchedule(sched Schedule) ([]snapshot.Snapshot, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	if len(sched.Times) > 0 && sched.Times[0] < s.time-1e-9 {
		return nil, fmt.Errorf("%w: schedule starts at %g but simulation is at %g",
			ErrBadConfig, sched.Times[0], s.time)
	}
	snaps := make([]snapshot.Snapshot, 0, len(sched.Times))
	for i, t := range sched.Times {
		s.AdvanceTo(t)
		snaps = append(snaps, s.SnapshotNow(sched.Labels[i]))
	}
	return snaps, nil
}

// TrueQualities returns the ground-truth quality for the given URLs
// (aligned page order), enabling evaluation against truth rather than
// future PageRank.
func (s *Sim) TrueQualities(urls []string) ([]float64, error) {
	out := make([]float64, len(urls))
	for i, u := range urls {
		id, ok := s.g.Lookup(u)
		if !ok {
			return nil, fmt.Errorf("webcorpus: unknown URL %q", u)
		}
		out[i] = s.g.Page(id).Quality
	}
	return out, nil
}

// betaSample draws from Beta(a, b) via two Gamma variates
// (Marsaglia–Tsang), using only math/rand.
func betaSample(rng *rand.Rand, a, b float64) float64 {
	x := gammaSample(rng, a)
	y := gammaSample(rng, b)
	return x / (x + y)
}

// gammaSample draws from Gamma(shape, 1) with the Marsaglia–Tsang method
// (boosted for shape < 1).
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// poisson draws Poisson(lambda): Knuth for small lambda, normal
// approximation for large.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
	if v < 0 {
		return 0
	}
	return int(math.Round(v))
}

// binomial draws Binomial(n, p): exact Bernoulli loop for small n, normal
// approximation for large n.
func binomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n < 50 {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	v := int(math.Round(mean + sd*rng.NormFloat64()))
	if v < 0 {
		v = 0
	}
	if v > n {
		v = n
	}
	return v
}
