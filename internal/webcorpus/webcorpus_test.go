package webcorpus

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"pagequality/internal/graph"
	"pagequality/internal/snapshot"
)

// smallConfig is a fast corpus for unit tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Sites = 12
	cfg.InitialPagesPerSite = 6
	cfg.Users = 3000
	cfg.VisitRate = 3000
	cfg.LinkProb = 0.2
	cfg.BirthRate = 2
	cfg.BurnInWeeks = 10
	cfg.Seed = 7
	return cfg
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Sites = 0 },
		func(c *Config) { c.InitialPagesPerSite = 0 },
		func(c *Config) { c.Users = 5 },
		func(c *Config) { c.VisitRate = 0 },
		func(c *Config) { c.LinkProb = 0 },
		func(c *Config) { c.LinkProb = 1.5 },
		func(c *Config) { c.SameSiteBias = -0.1 },
		func(c *Config) { c.QualityAlpha = 0 },
		func(c *Config) { c.BirthRate = -1 },
		func(c *Config) { c.ForgetRate = -1 },
		func(c *Config) { c.NoiseRate = -1 },
		func(c *Config) { c.DT = -0.5 },
		func(c *Config) { c.BurnInWeeks = -1 },
		func(c *Config) { c.Workers = -1 },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCorpusShape(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Time() < -1e-9 || s.Time() > 0.5 {
		t.Fatalf("time after burn-in = %g, want ~0", s.Time())
	}
	if s.NumPages() < 12 {
		t.Fatalf("pages = %d", s.NumPages())
	}
	if s.NumLinks() == 0 {
		t.Fatal("no links after burn-in")
	}
	if err := s.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	// Every page has a quality in (0,1] and a created time in the burn-in
	// window or later.
	for i := 0; i < s.NumPages(); i++ {
		pg := s.Graph().Page(graph.NodeID(i))
		if !(pg.Quality > 0 && pg.Quality <= 1) {
			t.Fatalf("page %d quality %g", i, pg.Quality)
		}
		if pg.Created < -10-1e-9 || pg.Created > s.Time() {
			t.Fatalf("page %d created %g outside [-10,%g]", i, pg.Created, s.Time())
		}
		if pg.URL == "" || pg.Site < 0 || int(pg.Site) >= 12 {
			t.Fatalf("page %d metadata %+v", i, pg)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumPages() != b.NumPages() || a.NumLinks() != b.NumLinks() {
		t.Fatalf("same seed differs: (%d,%d) vs (%d,%d)",
			a.NumPages(), a.NumLinks(), b.NumPages(), b.NumLinks())
	}
	cfg := smallConfig()
	cfg.Seed = 8
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumPages() == c.NumPages() && a.NumLinks() == c.NumLinks() {
		t.Log("warning: different seeds produced identical counts (possible but unlikely)")
	}
}

func TestEvolutionGrowsWeb(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	pages0, links0 := s.NumPages(), s.NumLinks()
	s.AdvanceTo(8)
	if s.NumPages() <= pages0 {
		t.Fatalf("pages did not grow: %d -> %d", pages0, s.NumPages())
	}
	if s.NumLinks() <= links0 {
		t.Fatalf("links did not grow: %d -> %d", links0, s.NumLinks())
	}
	if err := s.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
}

// Higher-quality pages accumulate more links: the corpus must realise the
// model's central mechanism. Compare mean final in-degree of the top and
// bottom quality terciles among pages born before burn-in midpoint.
func TestQualityDrivesLinks(t *testing.T) {
	cfg := smallConfig()
	cfg.NoiseRate = 0 // keep the comparison clean
	cfg.ForgetRate = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.AdvanceTo(20)
	g := s.Graph()
	type pq struct {
		deg int
		q   float64
	}
	var old []pq
	for i := 0; i < g.NumNodes(); i++ {
		pg := g.Page(graph.NodeID(i))
		if pg.Created < -5 {
			old = append(old, pq{g.InDegree(graph.NodeID(i)), pg.Quality})
		}
	}
	if len(old) < 20 {
		t.Fatalf("only %d old pages", len(old))
	}
	var hiDeg, hiN, loDeg, loN float64
	for _, x := range old {
		if x.q > 0.6 {
			hiDeg += float64(x.deg)
			hiN++
		} else if x.q < 0.3 {
			loDeg += float64(x.deg)
			loN++
		}
	}
	if hiN == 0 || loN == 0 {
		t.Skip("quality terciles empty for this seed")
	}
	if hiDeg/hiN <= loDeg/loN {
		t.Fatalf("high-quality mean in-degree %.1f not above low-quality %.1f",
			hiDeg/hiN, loDeg/loN)
	}
}

func TestPaperSchedule(t *testing.T) {
	sched := PaperSchedule()
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sched.Times) != 4 {
		t.Fatalf("schedule has %d snapshots", len(sched.Times))
	}
	gaps := sched.Gaps()
	// Figure 4: one month, one month, four months.
	if gaps[0] != 4 || gaps[1] != 4 || gaps[2] != 18 {
		t.Fatalf("gaps = %v, want [4 4 18]", gaps)
	}
	if sched.Labels[0] != "t1" || sched.Labels[3] != "t4" {
		t.Fatalf("labels = %v", sched.Labels)
	}
}

func TestScheduleValidation(t *testing.T) {
	bad := []Schedule{
		{},
		{Times: []float64{0, 1}, Labels: []string{"a"}},
		{Times: []float64{0}, Labels: []string{""}},
		{Times: []float64{4, 0}, Labels: []string{"a", "b"}},
	}
	for i, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("schedule %d accepted", i)
		}
	}
	if g := (Schedule{Times: []float64{1}, Labels: []string{"x"}}).Gaps(); g != nil {
		t.Fatal("single snapshot has gaps")
	}
}

func TestRunSchedule(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := s.RunSchedule(PaperSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 4 {
		t.Fatalf("%d snapshots", len(snaps))
	}
	for i, sn := range snaps {
		if err := sn.Graph.Validate(); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	// Snapshots are deep copies: later snapshots see more pages.
	if snaps[3].Graph.NumNodes() <= snaps[0].Graph.NumNodes() {
		t.Fatalf("web did not grow across snapshots: %d -> %d",
			snaps[0].Graph.NumNodes(), snaps[3].Graph.NumNodes())
	}
	// The aligned intersection mirrors §8.1's "common pages".
	al, err := snapshot.Align(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if al.NumPages() == 0 || al.NumPages() > snaps[0].Graph.NumNodes() {
		t.Fatalf("aligned pages = %d", al.NumPages())
	}
	// Running a schedule that is now in the past must fail.
	if _, err := s.RunSchedule(PaperSchedule()); !errors.Is(err, ErrBadConfig) {
		t.Fatal("past schedule accepted")
	}
}

func TestTrueQualities(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := s.Graph()
	urls := []string{g.Page(0).URL, g.Page(3).URL}
	qs, err := s.TrueQualities(urls)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] != g.Page(0).Quality || qs[1] != g.Page(3).Quality { //pqlint:allow floateq the quality vector must be an exact copy of the page fields
		t.Fatal("qualities do not match pages")
	}
	if _, err := s.TrueQualities([]string{"http://nowhere/"}); err == nil {
		t.Fatal("unknown URL accepted")
	}
}

func TestPopularityBounded(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.AdvanceTo(15)
	for i := 0; i < s.NumPages(); i++ {
		id := graph.NodeID(i)
		pop := s.Popularity(id)
		q := s.Quality(id)
		if pop < 0 || pop > 1 {
			t.Fatalf("page %d popularity %g outside [0,1]", i, pop)
		}
		// Popularity can exceed Q only through noise links, which do not
		// affect the likes count — so likes/n <= ~Q + sampling slack.
		if pop > q+0.08 {
			t.Fatalf("page %d popularity %g far above quality %g", i, pop, q)
		}
	}
}

// The evolved corpus must be bitwise identical at every worker count: the
// per-page counter streams make draws scheduling-independent, and this test
// enforces it on the full pipeline (burn-in + schedule + snapshots).
func TestStepWorkerCountInvariance(t *testing.T) {
	run := func(workers int) ([]byte, *Sim) {
		cfg := smallConfig()
		// More pages than one draw chunk, so the sharded parallel path is
		// genuinely exercised (smallConfig stays below the threshold and
		// would fall back to the serial draw at every worker count).
		cfg.Sites = 30
		cfg.InitialPagesPerSite = 40
		cfg.BurnInWeeks = 3
		cfg.Workers = workers
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		snaps, err := s.RunSchedule(PaperSchedule())
		if err != nil {
			t.Fatal(err)
		}
		enc, err := snapshot.Encode(snaps)
		if err != nil {
			t.Fatal(err)
		}
		return enc, s
	}
	ref, refSim := run(1)
	if refSim.NumPages() <= drawChunk {
		t.Fatalf("corpus has %d pages; need > drawChunk=%d to exercise the parallel path",
			refSim.NumPages(), drawChunk)
	}
	for _, workers := range []int{2, 0} { // 0 = GOMAXPROCS
		got, sim := run(workers)
		if !bytes.Equal(got, ref) {
			t.Fatalf("snapshots with Workers=%d differ from Workers=1", workers)
		}
		if sim.NumPages() != refSim.NumPages() {
			t.Fatalf("page count with Workers=%d: %d vs %d", workers, sim.NumPages(), refSim.NumPages())
		}
		for p := 0; p < sim.NumPages(); p++ {
			// Bitwise float comparison is deliberate here (see pqlint's
			// floateq rationale): the invariance contract is exact equality.
			if math.Float64bits(sim.aware[p]) != math.Float64bits(refSim.aware[p]) ||
				math.Float64bits(sim.likes[p]) != math.Float64bits(refSim.likes[p]) {
				t.Fatalf("page %d user-state with Workers=%d differs: aware %v vs %v, likes %v vs %v",
					p, workers, sim.aware[p], refSim.aware[p], sim.likes[p], refSim.likes[p])
			}
		}
	}
}

// Regression test for the normal-approximation overshoot: with a tiny user
// population and a huge visit rate, the unclamped draw phase pushed aware
// and likes past Users, so Popularity() exceeded 1. Drive that regime hard
// and assert the invariants every tick — with and without the search
// channel, whose session visits must respect the same
// likes <= aware <= Users clamps as organic draws.
func TestPopularityClampedTinyUsers(t *testing.T) {
	for _, searched := range []bool{false, true} {
		name := "organic-only"
		if searched {
			name = "with-search"
		}
		t.Run(name, func(t *testing.T) {
			cfg := smallConfig()
			cfg.Users = 12
			cfg.VisitRate = 50000 // enormous visit pressure on 12 users
			cfg.QualityAlpha = 60 // qualities near 1: almost every discovery likes
			cfg.QualityBeta = 1
			cfg.BurnInWeeks = 0
			if searched {
				// Heavy session traffic funnelling everyone to the same
				// top results, so search alone could blow the clamps.
				cfg.Search = SearchConfig{SessionsPerWeek: 2000, TopK: 8}
			}
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := float64(cfg.Users)
			for tick := 0; tick < 200; tick++ {
				s.Step()
				for p := 0; p < s.NumPages(); p++ {
					id := graph.NodeID(p)
					if s.aware[p] > n {
						t.Fatalf("tick %d page %d: aware %g exceeds Users %g", tick, p, s.aware[p], n)
					}
					if s.likes[p] > s.aware[p] {
						t.Fatalf("tick %d page %d: likes %g exceeds aware %g", tick, p, s.likes[p], s.aware[p])
					}
					if pop := s.Popularity(id); pop < 0 || pop > 1 {
						t.Fatalf("tick %d page %d: popularity %g outside [0,1]", tick, p, pop)
					}
				}
			}
			if searched {
				if sess, _, _ := s.SearchStats(); sess == 0 {
					t.Fatal("search channel never fired in the clamp test")
				}
			}
		})
	}
}

func TestAppendPageURL(t *testing.T) {
	for _, tc := range []struct {
		site, seq int
		want      string
	}{
		{0, 0, "http://site000.example/page000000"},
		{7, 42, "http://site007.example/page000042"},
		{154, 1234567, "http://site154.example/page1234567"},
	} {
		if got := string(appendPageURL(nil, tc.site, tc.seq)); got != tc.want {
			t.Errorf("appendPageURL(%d,%d) = %q, want %q", tc.site, tc.seq, got, tc.want)
		}
	}
}

func TestPageTextDeterministicAndTopical(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := s.PageText(0, TextOptions{})
	b := s.PageText(0, TextOptions{})
	if a != b {
		t.Fatal("page text not deterministic")
	}
	if c := s.PageText(1, TextOptions{}); c == a {
		t.Fatal("different pages produced identical text")
	}
	topic := SiteTopic(int(s.Graph().Page(0).Site))
	if !strings.Contains(a, topic) {
		t.Fatalf("text does not contain site topic %q", topic)
	}
	words := strings.Fields(a)
	if len(words) < 50 {
		t.Fatalf("text too short: %d words", len(words))
	}
	texts := s.AllTexts(TextOptions{MinWords: 10, MaxWords: 20})
	if len(texts) != s.NumPages() {
		t.Fatalf("AllTexts returned %d texts for %d pages", len(texts), s.NumPages())
	}
}

func TestSiteTopicStable(t *testing.T) {
	if SiteTopic(0) != SiteTopic(len(topics)) {
		t.Fatal("topic assignment not round-robin")
	}
	if SiteTopic(-1) == "" {
		t.Fatal("negative site broke SiteTopic")
	}
}

func BenchmarkAdvanceWeek(b *testing.B) {
	cfg := smallConfig()
	cfg.BurnInWeeks = 5
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AdvanceTo(s.Time() + 1)
	}
}

func TestBirthPage(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := s.NumPages()
	id, err := s.BirthPage(3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPages() != before+1 {
		t.Fatalf("pages %d -> %d", before, s.NumPages())
	}
	pg := s.Graph().Page(id)
	if pg.Quality != 0.9 || pg.Site != 3 {
		t.Fatalf("injected page = %+v", pg)
	}
	if pg.Created != s.Time() { //pqlint:allow floateq Created must equal the simulator clock exactly
		t.Fatalf("created %g, want current time %g", pg.Created, s.Time())
	}
	// Seeded with one liker and one in-link.
	if s.Popularity(id) <= 0 {
		t.Fatal("injected page has no seed liker")
	}
	if s.Graph().InDegree(id) != 1 {
		t.Fatalf("in-degree = %d, want 1", s.Graph().InDegree(id))
	}
	// Validation.
	if _, err := s.BirthPage(-1, 0.5); err == nil {
		t.Fatal("negative site accepted")
	}
	if _, err := s.BirthPage(99999, 0.5); err == nil {
		t.Fatal("out-of-range site accepted")
	}
	if _, err := s.BirthPage(0, 0); err == nil {
		t.Fatal("zero quality accepted")
	}
	if _, err := s.BirthPage(0, 1.5); err == nil {
		t.Fatal("quality > 1 accepted")
	}
	// The injected page participates in evolution: advance and check it
	// gains popularity.
	p0 := s.Popularity(id)
	s.AdvanceTo(s.Time() + 30)
	if s.Popularity(id) <= p0 {
		t.Fatalf("injected page did not grow: %g -> %g", p0, s.Popularity(id))
	}
}
