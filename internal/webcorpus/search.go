package webcorpus

// This file is the search-discovery channel: the feedback loop the paper
// argues shapes the real Web but could never experiment on. Alongside the
// popularity channel (visits ∝ current popularity, Proposition 1), users
// also discover pages through a search engine: per tick a Poisson number
// of query sessions issue zipf-distributed queries over the corpus topic
// vocabulary, the active ranking.Policy orders the relevant set against a
// periodically refrozen index + authority scores, and each session visits
// the top-k results, converting to aware/like/link with exactly the
// organic-visit Bernoulli draws. Because ranking feeds the link graph and
// the link graph feeds the next ranking, the loop closes: the policy
// choice (pure PageRank, the paper's Q(p), or Pandey/Cho's partially
// randomized ranking) now shapes which pages get rich.
//
// Determinism: sessions are tick-level serial events like births and
// churn, drawn from their own (seed, keySearch, tick) stream; queries
// come from the loadgen workload stream (pure in (seed, session index));
// the randomized policy draws from (seed, query, tick) streams; and the
// refresh pipeline (index freeze, PageRank, live quality) is bitwise
// worker-count invariant. A searched corpus therefore evolves bitwise
// identically at every Workers setting.

import (
	"fmt"
	"math"

	"pagequality/internal/graph"
	"pagequality/internal/loadgen"
	"pagequality/internal/pagerank"
	"pagequality/internal/quality"
	"pagequality/internal/randx"
	"pagequality/internal/ranking"
	"pagequality/internal/search"
)

// SearchConfig parameterises the search-discovery channel. The zero value
// disables search entirely (SessionsPerWeek == 0), preserving the plain
// popularity-only corpus bit for bit.
type SearchConfig struct {
	// SessionsPerWeek is the Poisson mean number of query sessions per
	// week across the user population; 0 disables the channel.
	SessionsPerWeek float64
	// TopK is how many results each session visits (default 10).
	TopK int
	// ZipfS is the zipf exponent of the query distribution over the topic
	// vocabulary (default 1.0; head topics dominate as on the real Web).
	ZipfS float64
	// QueryWordsPerTopic extends the vocabulary beyond the topic names
	// with this many topic words per topic (default 5); they form the
	// zipf tail.
	QueryWordsPerTopic int
	// RefreshWeeks is the cadence at which the engine re-crawls: the
	// index and authority scores are refrozen from the live graph every
	// RefreshWeeks (default 1). Pages born since the last refresh are
	// invisible to search until the next one — the crawler lag of a real
	// engine.
	RefreshWeeks float64
	// StartWeek is when the search era begins (default 0, the first
	// crawl). Sessions before this time never fire, so the burn-in
	// corpus is identical across policies — the "one seed set" every
	// policy comparison starts from.
	StartWeek float64
	// Policy is the active ranking policy (default ranking.ByPageRank).
	Policy ranking.Policy
	// Estimator configures the live Q(p) computed at each refresh for
	// the quality policy. A wholly zero value selects the corpus-tuned
	// defaults (C=1, 5% filter, trend cap 0.3 — the DefaultHeadlineConfig
	// constants).
	Estimator quality.Config
}

// enabled reports whether the channel is on at all.
func (sc *SearchConfig) enabled() bool { return sc.SessionsPerWeek > 0 }

func (sc *SearchConfig) fill() error {
	if !sc.enabled() {
		if sc.SessionsPerWeek < 0 {
			return fmt.Errorf("%w: SessionsPerWeek=%g", ErrBadConfig, sc.SessionsPerWeek)
		}
		return nil
	}
	if sc.TopK == 0 {
		sc.TopK = 10
	}
	if sc.ZipfS == 0 {
		sc.ZipfS = 1.0
	}
	if sc.QueryWordsPerTopic == 0 {
		sc.QueryWordsPerTopic = 5
	}
	if sc.RefreshWeeks == 0 {
		sc.RefreshWeeks = 1
	}
	if sc.Policy == nil {
		sc.Policy = ranking.ByPageRank{}
	}
	if sc.Estimator == (quality.Config{}) {
		sc.Estimator = quality.Config{C: 1.0, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true, MaxTrend: 0.3}
	}
	switch {
	case sc.TopK < 1:
		return fmt.Errorf("%w: search TopK=%d", ErrBadConfig, sc.TopK)
	case sc.ZipfS < 0 || math.IsNaN(sc.ZipfS):
		return fmt.Errorf("%w: search ZipfS=%g", ErrBadConfig, sc.ZipfS)
	case sc.QueryWordsPerTopic < 0:
		return fmt.Errorf("%w: QueryWordsPerTopic=%d", ErrBadConfig, sc.QueryWordsPerTopic)
	case sc.RefreshWeeks <= 0:
		return fmt.Errorf("%w: RefreshWeeks=%g", ErrBadConfig, sc.RefreshWeeks)
	case sc.Estimator.C < 0 || sc.Estimator.MinChangeFrac < 0 || sc.Estimator.MaxTrend < 0:
		return fmt.Errorf("%w: search estimator %+v", ErrBadConfig, sc.Estimator)
	}
	return nil
}

// QueryVocab builds the deterministic query vocabulary the search channel
// draws from: the topic names of the sites in use (the zipf head), then
// wordsPerTopic topic words per topic (the tail), in fixed order.
func (s *Sim) QueryVocab(wordsPerTopic int) []string {
	nTopics := s.cfg.Sites
	if nTopics > len(topics) {
		nTopics = len(topics)
	}
	vocab := make([]string, 0, nTopics*(1+wordsPerTopic))
	for t := 0; t < nTopics; t++ {
		vocab = append(vocab, topics[t])
	}
	for w := 0; w < wordsPerTopic; w++ {
		for t := 0; t < nTopics; t++ {
			vocab = append(vocab, topicWord(topics[t], w))
		}
	}
	return vocab
}

// initSearch prepares the channel at construction time. Called by New
// after validation, before the burn-in.
func (s *Sim) initSearch() error {
	sc := &s.cfg.Search
	if !sc.enabled() {
		return nil
	}
	wl, err := loadgen.NewWorkload(s.QueryVocab(sc.QueryWordsPerTopic), sc.ZipfS, s.cfg.Seed)
	if err != nil {
		return fmt.Errorf("%w: search workload: %v", ErrBadConfig, err)
	}
	s.workload = wl
	s.refreshTicks = uint64(math.Round(sc.RefreshWeeks / s.cfg.DT))
	if s.refreshTicks < 1 {
		s.refreshTicks = 1
	}
	return nil
}

// refreshSearch refreezes the engine's view of the corpus: index the
// current texts, compute PageRank on the frozen graph, and derive the
// live quality estimate from the previous refresh's vector (Equation 1).
// Every stage is bitwise worker-count invariant.
func (s *Sim) refreshSearch() {
	ix := search.NewIndex()
	ix.AddAll(s.AllTexts(TextOptions{}))
	ix.Freeze()
	pr, err := pagerank.Compute(graph.Freeze(s.g), pagerank.Options{
		Variant: pagerank.VariantPaper,
		Workers: s.workers,
	})
	if err != nil {
		// Options are fixed and valid and the graph is well-formed by
		// construction; a failure here is a programming error.
		panic("webcorpus: refresh pagerank: " + err.Error())
	}
	q, err := quality.Live(s.prevPR, pr.Rank, s.cfg.Search.Estimator)
	if err != nil {
		panic("webcorpus: refresh live quality: " + err.Error())
	}
	s.prevPR = pr.Rank
	s.rank = &ranking.Context{
		Index:    ix,
		PageRank: pr.Rank,
		Quality:  q,
		Seed:     s.cfg.Seed,
	}
	s.nextRefresh = s.tick + s.refreshTicks
}

// stepSearch runs the tick's query sessions: a serial tick-level event
// (like births and churn) drawn from its own per-tick stream, so the
// draw-phase worker count cannot influence it.
func (s *Sim) stepSearch() {
	sc := &s.cfg.Search
	if s.time < sc.StartWeek-timeSlack {
		return // pre-search era
	}
	if s.rank == nil || s.tick >= s.nextRefresh {
		s.refreshSearch()
	}
	s.rank.Tick = s.tick // keys the randomized policy's per-query streams
	st := randx.NewStream(s.cfg.Seed, keySearch, s.tick)
	sessions := randx.Poisson(&st, sc.SessionsPerWeek*s.cfg.DT)
	for i := 0; i < sessions; i++ {
		query := s.workload.Query(s.searchSeq)
		s.searchSeq++
		docs, err := sc.Policy.Rank(s.rank, query, sc.TopK)
		if err != nil {
			// The context and k are constructed here and always valid.
			panic("webcorpus: policy rank: " + err.Error())
		}
		s.searchSessions++
		for _, d := range docs {
			s.searchVisit(&st, graph.NodeID(d))
		}
	}
}

// searchVisit applies one search-driven visit to page p: a uniformly
// random user follows the result link, and the visit converts exactly as
// an organic one — discovery if the user was unaware, liking with
// probability Q(p), a published link with probability LinkProb — under
// the same likes <= aware <= Users clamps as the draw phase.
func (s *Sim) searchVisit(st randx.Source, p graph.NodeID) {
	s.searchVisits++
	n := float64(s.cfg.Users)
	unawareFrac := 1 - s.aware[p]/n
	if unawareFrac <= 0 {
		return // everyone already knows the page; re-reading changes nothing
	}
	if randx.Float64(st) >= unawareFrac {
		return // the visitor happened to be aware already
	}
	s.aware[p]++
	s.searchDiscoveries++
	if s.firstDisc[p] < 0 {
		s.firstDisc[p] = int64(s.tick)
	}
	if randx.Float64(st) < s.quality[p] && s.likes[p] < s.aware[p] {
		s.likes[p]++
		if randx.Float64(st) < s.cfg.LinkProb {
			s.createLinkTo(st, p)
		}
	}
}

// SearchStats reports the channel's cumulative counters: query sessions
// run, result visits made, and visits that were first discoveries.
func (s *Sim) SearchStats() (sessions, visits, discoveries int64) {
	return s.searchSessions, s.searchVisits, s.searchDiscoveries
}

// FirstDiscoveryWeek returns the simulation week at which page p was
// first discovered by a user beyond its seed liker — through either
// channel — and whether that has happened yet.
func (s *Sim) FirstDiscoveryWeek(p graph.NodeID) (float64, bool) {
	t := s.firstDisc[p]
	if t < 0 {
		return 0, false
	}
	// The discovery landed during tick t, i.e. by the end-of-tick clock.
	return float64(t+1)*s.cfg.DT - s.cfg.BurnInWeeks, true
}
