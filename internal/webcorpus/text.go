package webcorpus

import (
	"fmt"
	"math/rand"
	"strings"

	"pagequality/internal/graph"
)

// This file synthesises page text for the search-engine substrate. Each
// site is assigned a topic; a page's text mixes its site's topic
// vocabulary with a global background vocabulary, so topical queries
// retrieve pages from a handful of sites — mirroring how real keyword
// queries define a relevant set that the quality metric then ranks
// (Section 4's relevance-versus-quality discussion).

// topics is the pool of topic names sites draw from (round-robin).
var topics = []string{
	"astronomy", "databases", "cycling", "cooking", "gardening",
	"photography", "sailing", "chess", "volcanoes", "typography",
	"cryptography", "orchids", "meteorology", "railways", "beekeeping",
	"calligraphy", "robotics", "genomics", "economics", "linguistics",
}

// topicVocabSize is how many distinct topic words each topic has.
const topicVocabSize = 40

// backgroundVocabSize is the size of the shared background vocabulary.
const backgroundVocabSize = 400

// SiteTopic returns the topic name assigned to a site.
func SiteTopic(site int) string {
	if site < 0 {
		return topics[0]
	}
	return topics[site%len(topics)]
}

// topicWord returns the w-th word of a topic's vocabulary, e.g.
// "astronomy17".
func topicWord(topic string, w int) string {
	return fmt.Sprintf("%s%d", topic, w%topicVocabSize)
}

// backgroundWord returns the w-th background word, e.g. "common123".
func backgroundWord(w int) string {
	return fmt.Sprintf("common%d", w%backgroundVocabSize)
}

// TextOptions tunes text generation.
type TextOptions struct {
	// MinWords/MaxWords bound the document length (defaults 60/180).
	MinWords, MaxWords int
	// TopicFrac is the fraction of words drawn from the site topic
	// vocabulary (default 0.6); the rest come from the background.
	TopicFrac float64
}

func (o *TextOptions) fill() {
	if o.MinWords == 0 {
		o.MinWords = 60
	}
	if o.MaxWords == 0 {
		o.MaxWords = 180
	}
	if o.TopicFrac == 0 {
		o.TopicFrac = 0.6
	}
}

// PageText deterministically generates the text of page id: the generator
// is seeded from the corpus seed and the page id, so repeated calls (and
// repeated crawls) see identical documents.
func (s *Sim) PageText(id graph.NodeID, opts TextOptions) string {
	opts.fill()
	pg := s.g.Page(id)
	mix := uint64(s.cfg.Seed) ^ uint64(id+1)*0x9E3779B97F4A7C15
	rng := rand.New(rand.NewSource(int64(mix)))
	topic := SiteTopic(int(pg.Site))
	n := opts.MinWords + rng.Intn(opts.MaxWords-opts.MinWords+1)
	var b strings.Builder
	b.Grow(n * 10)
	// Title line: the topic plus the page number, always retrievable.
	fmt.Fprintf(&b, "%s page %d.", topic, id)
	for w := 0; w < n; w++ {
		b.WriteByte(' ')
		if rng.Float64() < opts.TopicFrac {
			b.WriteString(topicWord(topic, rng.Intn(topicVocabSize)))
		} else {
			b.WriteString(backgroundWord(rng.Intn(backgroundVocabSize)))
		}
	}
	return b.String()
}

// AllTexts generates the text of every page, indexed by NodeID.
func (s *Sim) AllTexts(opts TextOptions) []string {
	out := make([]string, s.g.NumNodes())
	for i := range out {
		out[i] = s.PageText(graph.NodeID(i), opts)
	}
	return out
}
