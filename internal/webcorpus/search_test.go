package webcorpus

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"pagequality/internal/graph"
	"pagequality/internal/ranking"
	"pagequality/internal/snapshot"
)

// searchedConfig is smallConfig with the search channel on.
func searchedConfig() Config {
	cfg := smallConfig()
	cfg.Search = SearchConfig{
		SessionsPerWeek: 400,
		TopK:            5,
		Policy:          ranking.ByPageRank{},
	}
	return cfg
}

func TestSearchConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Search.SessionsPerWeek = -1 },
		func(c *Config) { c.Search.TopK = -3 },
		func(c *Config) { c.Search.ZipfS = -0.5 },
		func(c *Config) { c.Search.ZipfS = math.NaN() },
		func(c *Config) { c.Search.QueryWordsPerTopic = -1 },
		func(c *Config) { c.Search.RefreshWeeks = -2 },
		func(c *Config) { c.Search.Estimator.C = -1 },
	}
	for i, mutate := range mutations {
		cfg := searchedConfig()
		mutate(&cfg)
		if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("mutation %d: error %v, want ErrBadConfig", i, err)
		}
	}
	// The zero value disables the channel and must stay valid.
	cfg := smallConfig()
	if _, err := New(cfg); err != nil {
		t.Fatalf("zero SearchConfig rejected: %v", err)
	}
}

func TestQueryVocabDeterministic(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := s.QueryVocab(3)
	b := s.QueryVocab(3)
	if len(a) != 12*(1+3) {
		t.Fatalf("vocab size %d, want %d", len(a), 12*4)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vocab not deterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
	// The head of the distribution is the topic names themselves.
	if a[0] != SiteTopic(0) {
		t.Fatalf("vocab head %q, want topic %q", a[0], SiteTopic(0))
	}
}

// TestSearchChannelActive verifies sessions run, convert, and change the
// corpus relative to the no-search baseline.
func TestSearchChannelActive(t *testing.T) {
	cfg := searchedConfig()
	searched, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	searched.AdvanceTo(4)
	sessions, visits, discoveries := searched.SearchStats()
	if sessions == 0 || visits == 0 || discoveries == 0 {
		t.Fatalf("search channel idle: sessions=%d visits=%d discoveries=%d", sessions, visits, discoveries)
	}
	if visits < sessions { // each session visits up to TopK results
		t.Fatalf("visits=%d < sessions=%d", visits, sessions)
	}
	if discoveries > visits {
		t.Fatalf("discoveries=%d > visits=%d", discoveries, visits)
	}

	base := smallConfig()
	plain, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	plain.AdvanceTo(4)
	if s, v, d := plain.SearchStats(); s != 0 || v != 0 || d != 0 {
		t.Fatalf("disabled channel reported stats %d/%d/%d", s, v, d)
	}
	// The searched web must have evolved differently (more discovery).
	var searchedAware, plainAware float64
	for p := 0; p < plain.NumPages() && p < searched.NumPages(); p++ {
		searchedAware += searched.aware[p]
		plainAware += plain.aware[p]
	}
	if searchedAware <= plainAware {
		t.Fatalf("search did not increase discovery: %g vs %g aware", searchedAware, plainAware)
	}
}

// TestSearchBurnInIdentical pins the "one seed set" property of policy
// comparisons: with StartWeek 0, the burn-in corpus is bitwise identical
// whether or not search is configured, because no session fires before
// t = 0.
func TestSearchBurnInIdentical(t *testing.T) {
	enc := func(cfg Config) []byte {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := snapshot.Encode([]snapshot.Snapshot{s.SnapshotNow("t0")})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(enc(smallConfig()), enc(searchedConfig())) {
		t.Fatal("burn-in corpus differs once search is configured (sessions fired before t=0?)")
	}
}

// TestSearchedCorpusWorkerInvariance extends the kernel invariance
// contract to the search-in-the-loop corpus: sessions, refreshes and
// policy draws are tick-level serial events, so the evolved corpus must
// stay bitwise identical at every worker count.
func TestSearchedCorpusWorkerInvariance(t *testing.T) {
	run := func(workers int) ([]byte, *Sim) {
		cfg := searchedConfig()
		// More pages than one draw chunk so the parallel path is real.
		cfg.Sites = 30
		cfg.InitialPagesPerSite = 40
		cfg.BurnInWeeks = 2
		cfg.Search.RefreshWeeks = 1
		cfg.Search.Policy = ranking.Randomized{Epsilon: 0.3}
		cfg.Workers = workers
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.AdvanceTo(3)
		enc, err := snapshot.Encode([]snapshot.Snapshot{s.SnapshotNow("t")})
		if err != nil {
			t.Fatal(err)
		}
		return enc, s
	}
	ref, refSim := run(1)
	if refSim.NumPages() <= drawChunk {
		t.Fatalf("corpus has %d pages; need > drawChunk=%d", refSim.NumPages(), drawChunk)
	}
	refSess, refVisits, refDisc := refSim.SearchStats()
	if refSess == 0 {
		t.Fatal("search channel idle in invariance test")
	}
	for _, workers := range []int{2, 0} { // 0 = GOMAXPROCS
		got, sim := run(workers)
		if !bytes.Equal(got, ref) {
			t.Fatalf("searched snapshots with Workers=%d differ from Workers=1", workers)
		}
		if s, v, d := sim.SearchStats(); s != refSess || v != refVisits || d != refDisc {
			t.Fatalf("search stats with Workers=%d: %d/%d/%d vs %d/%d/%d",
				workers, s, v, d, refSess, refVisits, refDisc)
		}
		for p := 0; p < sim.NumPages(); p++ {
			// Bitwise float comparison is deliberate: the invariance
			// contract is exact equality.
			if math.Float64bits(sim.aware[p]) != math.Float64bits(refSim.aware[p]) ||
				math.Float64bits(sim.likes[p]) != math.Float64bits(refSim.likes[p]) {
				t.Fatalf("page %d user-state with Workers=%d differs", p, workers)
			}
			if sim.firstDisc[p] != refSim.firstDisc[p] {
				t.Fatalf("page %d firstDisc with Workers=%d: %d vs %d",
					p, workers, sim.firstDisc[p], refSim.firstDisc[p])
			}
		}
	}
}

func TestFirstDiscoveryWeek(t *testing.T) {
	cfg := searchedConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	initialPages := s.NumPages()
	s.AdvanceTo(6)
	found := 0
	for p := 0; p < s.NumPages(); p++ {
		id := graph.NodeID(p)
		week, ok := s.FirstDiscoveryWeek(id)
		if !ok {
			continue
		}
		found++
		created := s.Graph().Page(id).Created
		// Setup pages are backdated across the burn-in window but exist
		// from the first tick, so only run-born pages have a meaningful
		// birth-before-discovery ordering.
		if p >= initialPages && week < created-timeSlack {
			t.Fatalf("page %d discovered at week %g before its birth %g", p, week, created)
		}
		if week > s.Time()+timeSlack {
			t.Fatalf("page %d discovered at week %g after now %g", p, week, s.Time())
		}
		if s.aware[p] <= 1 {
			t.Fatalf("page %d has a discovery week but aware=%g", p, s.aware[p])
		}
	}
	if found == 0 {
		t.Fatal("no page was ever discovered")
	}
}

// TestAdvanceToTickExact pins the clock bugfix: with an inexact DT the
// tick count must still match round(span/DT) exactly, and splitting the
// horizon across AdvanceTo calls must not change it.
func TestAdvanceToTickExact(t *testing.T) {
	cfg := smallConfig()
	cfg.DT = 0.1 // not exactly representable in binary
	cfg.BurnInWeeks = 0
	cfg.BirthRate = 0
	cfg.NoiseRate = 0

	oneShot, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oneShot.AdvanceTo(100)
	if want := uint64(math.Round(100 / cfg.DT)); oneShot.tick != want {
		t.Fatalf("one-shot AdvanceTo(100): %d ticks, want %d", oneShot.tick, want)
	}

	split, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 single-week hops accumulate no drift: same tick count.
	for w := 1; w <= 100; w++ {
		split.AdvanceTo(float64(w))
	}
	if split.tick != oneShot.tick {
		t.Fatalf("split advance took %d ticks, one-shot %d", split.tick, oneShot.tick)
	}
	if math.Float64bits(split.Time()) != math.Float64bits(oneShot.Time()) {
		t.Fatalf("clocks differ: %v vs %v", split.Time(), oneShot.Time())
	}
}
