package webcorpus

import "fmt"

// Schedule is a crawl timetable: when to capture each snapshot, in weeks
// relative to the first crawl (t = 0). It reifies the paper's Figure 4.
type Schedule struct {
	Times  []float64
	Labels []string
}

// PaperSchedule returns the Figure-4 timeline of the paper's experiment:
//
//	t1  4th week of December 2002   → week 0
//	t2  3rd week of January  2003   → week 4   (≈ one month later)
//	t3  3rd week of February 2003   → week 8   (≈ one month later)
//	t4  4th week of June     2003   → week 26  (≈ four months later)
func PaperSchedule() Schedule {
	return Schedule{
		Times:  []float64{0, 4, 8, 26},
		Labels: []string{"t1", "t2", "t3", "t4"},
	}
}

// Validate checks the schedule is well-formed: equal-length slices,
// non-decreasing times, non-empty labels.
func (s Schedule) Validate() error {
	if len(s.Times) == 0 {
		return fmt.Errorf("%w: empty schedule", ErrBadConfig)
	}
	if len(s.Times) != len(s.Labels) {
		return fmt.Errorf("%w: %d times but %d labels", ErrBadConfig, len(s.Times), len(s.Labels))
	}
	for i, l := range s.Labels {
		if l == "" {
			return fmt.Errorf("%w: empty label at %d", ErrBadConfig, i)
		}
		if i > 0 && s.Times[i] < s.Times[i-1] {
			return fmt.Errorf("%w: times not non-decreasing at %d", ErrBadConfig, i)
		}
	}
	return nil
}

// Gaps returns the interval lengths between consecutive snapshots.
func (s Schedule) Gaps() []float64 {
	if len(s.Times) < 2 {
		return nil
	}
	gaps := make([]float64, len(s.Times)-1)
	for i := 1; i < len(s.Times); i++ {
		gaps[i-1] = s.Times[i] - s.Times[i-1]
	}
	return gaps
}
