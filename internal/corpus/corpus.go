// Package corpus is the deterministic map-reduce query engine over the
// pagestore — the substrate every whole-corpus analysis (quality
// estimation, rank metrics, figure exports, ranking-policy sweeps)
// shares instead of hand-rolling its own walk.
//
// The execution model is map over segments, ordered reduce:
//
//   - Map runs one mapper call per pagestore segment on an atomic-cursor
//     worker pool. A segment's live records arrive in record (offset)
//     order with bodies decompressed — every live record in exactly one
//     mapper call.
//   - Results are folded in ascending segment-id order, regardless of
//     which worker finished first. Mappers over disjoint segments share
//     nothing, so for any pure mapper the output is bitwise identical at
//     every worker count.
//
// The verbs on top (Extract, Query, Score, TopN) additionally sort their
// final output by key (or by a total-order score comparator), which
// makes them independent of the physical segment layout too: compaction
// may rehome every record without changing a verb's result.
package corpus

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pagequality/internal/pagestore"
)

// Doc is one live document handed to mappers: key, metadata and the
// decompressed body.
type Doc = pagestore.Record

// Options tunes a corpus pass.
type Options struct {
	// Workers bounds the goroutines mapping segments. 0 uses GOMAXPROCS;
	// 1 runs sequentially. Results are bitwise identical either way.
	Workers int
}

// Mapper processes the live documents homed in one segment and returns
// that segment's partial result. It must not retain docs beyond the
// call and must be safe to run concurrently with other segments'
// mappers (mappers never share a segment).
type Mapper[T any] func(seg int, docs []Doc) (T, error)

// Map runs mapper over every segment holding live records and returns
// the per-segment results in ascending segment-id order — the ordered
// reduce input. An error aborts the pass; the earliest-segment error is
// reported regardless of which worker hit it first.
func Map[T any](st *pagestore.Store, mapper Mapper[T], opts Options) ([]T, error) {
	ids := st.SegmentIDs()
	results := make([]T, len(ids))
	errs := make([]error, len(ids))
	run := func(i int) {
		docs, err := st.ReadLive(ids[i])
		if err != nil {
			errs[i] = err
			return
		}
		results[i], errs[i] = mapper(ids[i], docs)
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 {
		for i := range ids {
			run(i)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(ids) {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
