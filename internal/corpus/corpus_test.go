package corpus

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"pagequality/internal/pagestore"
)

// buildStore writes a multi-segment fixture with overwrites across
// segment boundaries, returning the store and the expected latest body
// per key.
func buildStore(t testing.TB, tiny bool) (*pagestore.Store, map[string]string) {
	t.Helper()
	dir := t.TempDir()
	s, err := pagestore.Open(dir, pagestore.Options{MaxSegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	rng := rand.New(rand.NewSource(11))
	want := map[string]string{}
	rounds, keys := 5, 40
	if tiny {
		rounds, keys = 1, 3
	}
	for round := 0; round < rounds; round++ {
		for i := 0; i < keys; i++ {
			label := "t1"
			if i%3 == 0 {
				label = "t2"
			}
			// Most keys are unique per round (live records span every
			// segment); every fifth key is overwritten each round so the
			// latest-version-wins path is exercised too.
			key := fmt.Sprintf("%s/site-%03d-r%d/page", label, i, round)
			if i%5 == 0 {
				key = fmt.Sprintf("%s/site-%03d/page", label, i)
			}
			filler := make([]byte, 120)
			rng.Read(filler)
			body := fmt.Sprintf("round%d key%03d %x", round, i, filler)
			if err := s.Put(key, pagestore.Meta{FetchedAt: float64(round), Status: 200 + i%2}, []byte(body)); err != nil {
				t.Fatal(err)
			}
			want[key] = body
		}
	}
	if !tiny && len(s.SegmentIDs()) < 3 {
		t.Fatalf("fixture spans only %d segments", len(s.SegmentIDs()))
	}
	return s, want
}

// TestExtractMatchesKeyWalk pins the parity lemma the CLI refactors
// lean on: Extract(identity) is byte-identical to the pre-refactor
// walk — sorted KeysWithPrefix + Get per key.
func TestExtractMatchesKeyWalk(t *testing.T) {
	s, _ := buildStore(t, false)
	prefix := "t2/"

	// Pre-refactor walk.
	type rec struct {
		key  string
		meta pagestore.Meta
		body string
	}
	var want []rec
	for _, k := range s.KeysWithPrefix(prefix) {
		meta, body, err := s.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rec{k, meta, string(body)})
	}

	for _, workers := range []int{1, 2, 0} {
		got, err := Extract(s, func(d Doc) (rec, bool) {
			if !strings.HasPrefix(d.Key, prefix) {
				return rec{}, false
			}
			return rec{d.Key, d.Meta, string(d.Body)}, true
		}, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: Extract differs from key walk", workers)
		}
	}
}

// TestExtractLayoutInvariant: compaction rehomes every record; verb
// output must not change.
func TestExtractLayoutInvariant(t *testing.T) {
	s, _ := buildStore(t, false)
	before, err := Extract(s, func(d Doc) (string, bool) { return d.Key + ":" + string(d.Body), true }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := Extract(s, func(d Doc) (string, bool) { return d.Key + ":" + string(d.Body), true }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("Extract output changed across Compact")
	}
}

// docScore derives a float from the body in a way that would expose any
// reordering of the accumulation (values differ wildly in magnitude).
func docScore(d Doc) float64 {
	h := 0.0
	for i, b := range d.Body {
		h += float64(b) * math.Pow(1.0000173, float64(i%97))
	}
	return h * math.Exp(float64(len(d.Key)%7))
}

// TestScoreDeterministicAcrossWorkers pins the acceptance criterion:
// Score output (per-page floats and the chunked Total) is
// Float64bits-identical at workers 1, 2 and GOMAXPROCS.
func TestScoreDeterministicAcrossWorkers(t *testing.T) {
	s, want := buildStore(t, false)
	ref, err := Score(s, docScore, nil, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Keys) != len(want) {
		t.Fatalf("scored %d docs, want %d", len(ref.Keys), len(want))
	}
	for _, workers := range []int{2, 0} {
		got, err := Score(s, docScore, nil, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Total) != math.Float64bits(ref.Total) {
			t.Fatalf("workers=%d: Total bits differ", workers)
		}
		for i := range ref.Values {
			if math.Float64bits(got.Values[i]) != math.Float64bits(ref.Values[i]) {
				t.Fatalf("workers=%d: Values[%d] bits differ", workers, i)
			}
			if got.Keys[i] != ref.Keys[i] {
				t.Fatalf("workers=%d: Keys[%d] differ", workers, i)
			}
		}
	}
	// And across the physical layout.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	got, err := Score(s, docScore, nil, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Total) != math.Float64bits(ref.Total) {
		t.Fatal("Total bits changed across Compact")
	}
}

// TestScoreKeepFilter: keep prunes documents before scoring.
func TestScoreKeepFilter(t *testing.T) {
	s, _ := buildStore(t, false)
	sc, err := Score(s, func(Doc) float64 { return 1 }, func(d Doc) bool {
		return strings.HasPrefix(d.Key, "t2/")
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sc.Keys {
		if !strings.HasPrefix(k, "t2/") {
			t.Fatalf("kept key %q", k)
		}
	}
	if int(sc.Total) != len(sc.Keys) {
		t.Fatalf("Total %v with %d keys", sc.Total, len(sc.Keys))
	}
}

// TestQueryMatchesFilterWalk: Query == sorted keys of matching docs.
func TestQueryMatchesFilterWalk(t *testing.T) {
	s, want := buildStore(t, false)
	pred := func(d Doc) bool { return d.Meta.Status == 201 }
	got, err := Query(s, pred, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var exp []string
	for k := range want {
		meta, _, err := s.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Status == 201 {
			exp = append(exp, k)
		}
	}
	sort.Strings(exp)
	if !reflect.DeepEqual(got, exp) {
		t.Fatalf("Query = %d keys, walk = %d keys", len(got), len(exp))
	}
}

// TestTopNMatchesFullSort: the bounded-heap merge equals scoring every
// document, sorting under the total order and truncating — at every
// worker count and at boundary sizes.
func TestTopNMatchesFullSort(t *testing.T) {
	s, want := buildStore(t, false)
	sc, err := Score(s, docScore, nil, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	oracle := make([]Scored, len(sc.Keys))
	for i := range sc.Keys {
		oracle[i] = Scored{Key: sc.Keys[i], Score: sc.Values[i]}
	}
	sort.Slice(oracle, func(a, b int) bool { return ranksAfter(oracle[b], oracle[a]) })
	for _, n := range []int{1, 3, 10, len(want), len(want) + 5} {
		for _, workers := range []int{1, 2, 0} {
			got, err := TopN(s, n, docScore, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			exp := oracle
			if len(exp) > n {
				exp = exp[:n]
			}
			if len(got) != len(exp) {
				t.Fatalf("n=%d workers=%d: %d results, want %d", n, workers, len(got), len(exp))
			}
			for i := range exp {
				if got[i].Key != exp[i].Key || math.Float64bits(got[i].Score) != math.Float64bits(exp[i].Score) {
					t.Fatalf("n=%d workers=%d: rank %d = %+v, want %+v", n, workers, i, got[i], exp[i])
				}
			}
		}
	}
	if res, err := TopN(s, 0, docScore, Options{}); err != nil || res != nil {
		t.Fatalf("TopN(0) = %v, %v", res, err)
	}
}

// TestMapSegmentPartition: every live doc reaches exactly one mapper
// call, in offset order, and results fold in segment order.
func TestMapSegmentPartition(t *testing.T) {
	s, want := buildStore(t, false)
	counts, err := Map(s, func(seg int, docs []Doc) (int, error) {
		return len(docs), nil
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(want) {
		t.Fatalf("mapped %d docs, want %d", total, len(want))
	}
	ids := s.SegmentIDs()
	if len(counts) != len(ids) {
		t.Fatalf("%d results for %d segments", len(counts), len(ids))
	}
}

// TestMapError: a mapper error aborts the pass; the earliest segment's
// error wins.
func TestMapError(t *testing.T) {
	s, _ := buildStore(t, false)
	ids := s.SegmentIDs()
	boom := errors.New("boom")
	_, err := Map(s, func(seg int, docs []Doc) (int, error) {
		if seg == ids[0] || seg == ids[len(ids)-1] {
			return 0, fmt.Errorf("segment %d: %w", seg, boom)
		}
		return len(docs), nil
	}, Options{Workers: 0})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("segment %d:", ids[0])) {
		t.Fatalf("err %q does not name the earliest failing segment", err)
	}
}

// TestVerbsOnTinyStore: fewer segments than workers, single segment,
// empty results.
func TestVerbsOnTinyStore(t *testing.T) {
	s, want := buildStore(t, true)
	keys, err := Query(s, func(Doc) bool { return true }, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(want) {
		t.Fatalf("%d keys, want %d", len(keys), len(want))
	}
	none, err := Query(s, func(Doc) bool { return false }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("empty predicate matched %d", len(none))
	}
}
