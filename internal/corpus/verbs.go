package corpus

import (
	"sort"

	"pagequality/internal/pagestore"
)

// The verb layer: four structured queries built on Map. All of them
// return key-sorted (or total-order-scored) results, so their output is
// a pure function of the live document set — independent of worker
// count and of the physical segment layout.

// keyed carries a per-document projection with the key that orders it.
type keyed[R any] struct {
	key string
	val R
}

// project runs proj over every live document and returns the kept
// (key, value) pairs sorted by key. Live keys are unique, so the sort
// is a total order.
func project[R any](st *pagestore.Store, proj func(Doc) (R, bool), opts Options) ([]keyed[R], error) {
	parts, err := Map(st, func(_ int, docs []Doc) ([]keyed[R], error) {
		var out []keyed[R]
		for _, d := range docs {
			if v, ok := proj(d); ok {
				out = append(out, keyed[R]{key: d.Key, val: v})
			}
		}
		return out, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	all := make([]keyed[R], 0, n)
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].key < all[b].key })
	return all, nil
}

// Extract projects a field set out of every live document: proj returns
// the projection and whether to keep it. Results are in key order.
func Extract[R any](st *pagestore.Store, proj func(Doc) (R, bool), opts Options) ([]R, error) {
	pairs, err := project(st, proj, opts)
	if err != nil {
		return nil, err
	}
	out := make([]R, len(pairs))
	for i, p := range pairs {
		out[i] = p.val
	}
	return out, nil
}

// Query returns the keys of the live documents matching pred, sorted.
func Query(st *pagestore.Store, pred func(Doc) bool, opts Options) ([]string, error) {
	pairs, err := project(st, func(d Doc) (struct{}, bool) { return struct{}{}, pred(d) }, opts)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = p.key
	}
	return out, nil
}

// scoreChunk is the fixed accumulation chunk for Scores.Total: values
// are summed per 1024-key chunk in key order and the chunk partials are
// folded serially, the same fused-chunk discipline the PageRank and tick
// kernels use. Chunk boundaries depend only on the key count, so Total
// is bit-reproducible for a given live set no matter how the map phase
// was scheduled or how the records are laid out on disk.
const scoreChunk = 1024

// Scores is the result of a Score pass: one float per live document
// (kept docs only), key-ordered, plus their deterministic total.
type Scores struct {
	Keys   []string
	Values []float64
	Total  float64
}

// Score computes score for every live document. Documents for which
// keep is false are skipped (pass nil to keep all).
func Score(st *pagestore.Store, score func(Doc) float64, keep func(Doc) bool, opts Options) (*Scores, error) {
	pairs, err := project(st, func(d Doc) (float64, bool) {
		if keep != nil && !keep(d) {
			return 0, false
		}
		return score(d), true
	}, opts)
	if err != nil {
		return nil, err
	}
	sc := &Scores{
		Keys:   make([]string, len(pairs)),
		Values: make([]float64, len(pairs)),
	}
	for i, p := range pairs {
		sc.Keys[i] = p.key
		sc.Values[i] = p.val
	}
	for lo := 0; lo < len(sc.Values); lo += scoreChunk {
		hi := lo + scoreChunk
		if hi > len(sc.Values) {
			hi = len(sc.Values)
		}
		part := 0.0
		for _, v := range sc.Values[lo:hi] {
			part += v
		}
		sc.Total += part
	}
	return sc, nil
}

// Scored is one TopN result.
type Scored struct {
	Key   string
	Score float64
}

// ranksAfter reports whether a ranks strictly after b: lower score, or
// equal score and lexicographically later key. Keys are unique, so this
// is a total order; two strict comparisons express the exact tie-break
// without a float equality test.
func ranksAfter(a, b Scored) bool {
	if a.Score < b.Score {
		return true
	}
	if b.Score < a.Score {
		return false
	}
	return a.Key > b.Key
}

// topHeap is a bounded min-heap under ranksAfter: the root is the worst
// retained candidate, so a full heap rejects losers with one comparison.
type topHeap struct {
	n    int
	hits []Scored
}

func (t *topHeap) offer(h Scored) {
	if len(t.hits) < t.n {
		t.hits = append(t.hits, h)
		i := len(t.hits) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !ranksAfter(t.hits[i], t.hits[p]) {
				break
			}
			t.hits[i], t.hits[p] = t.hits[p], t.hits[i]
			i = p
		}
		return
	}
	if !ranksAfter(t.hits[0], h) {
		return
	}
	t.hits[0] = h
	i, n := 0, len(t.hits)
	for {
		worst := i
		if l := 2*i + 1; l < n && ranksAfter(t.hits[l], t.hits[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && ranksAfter(t.hits[r], t.hits[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.hits[i], t.hits[worst] = t.hits[worst], t.hits[i]
		i = worst
	}
}

// TopN returns the n best-scoring live documents — score descending,
// ties broken by key ascending. Each segment keeps a bounded heap of n
// candidates; the per-segment winners are merged under the same total
// order, so the result equals scoring every document and truncating.
func TopN(st *pagestore.Store, n int, score func(Doc) float64, opts Options) ([]Scored, error) {
	if n <= 0 {
		return nil, nil
	}
	parts, err := Map(st, func(_ int, docs []Doc) ([]Scored, error) {
		h := &topHeap{n: n}
		for _, d := range docs {
			h.offer(Scored{Key: d.Key, Score: score(d)})
		}
		return h.hits, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	var all []Scored
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(a, b int) bool { return ranksAfter(all[b], all[a]) })
	if len(all) > n {
		all = all[:n]
	}
	return all, nil
}
