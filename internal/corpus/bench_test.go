package corpus

import (
	"fmt"
	"math/rand"
	"testing"

	"pagequality/internal/pagestore"
)

// BenchmarkMap measures a Score pass (read + decompress + score every
// live document) at several worker counts. On multi-core hosts the
// per-segment decompression parallelizes; on a 1-vCPU box the counts
// should be within noise of each other — the pool adds no contention
// because segments never share state.
func BenchmarkMap(b *testing.B) {
	dir := b.TempDir()
	s, err := pagestore.Open(dir, pagestore.Options{MaxSegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(7))
	body := make([]byte, 4096)
	for i := 0; i < 1500; i++ {
		rng.Read(body)
		key := fmt.Sprintf("t1/site-%04d/page", i)
		if err := s.Put(key, pagestore.Meta{FetchedAt: 1, Status: 200}, body); err != nil {
			b.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sc, err := Score(s, func(d Doc) float64 {
					return float64(len(d.Body))
				}, nil, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(sc.Keys) != 1500 {
					b.Fatalf("scored %d docs", len(sc.Keys))
				}
			}
		})
	}
}
