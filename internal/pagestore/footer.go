package pagestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"pagequality/internal/randx"
)

// Segment footer. When a segment fills up (rotation) or is produced by
// compaction, a self-describing footer is appended after its last record
// and the file is never written again. The footer carries everything
// Open needs to index the segment without touching record bodies:
//
//	footMagic  byte 0xF5          (distinct from recMagic 0xA7, so a
//	                               record scan stops cleanly at a footer)
//	body:
//	  version  uvarint  (1)
//	  count    uvarint  (number of fence entries)
//	  dataLen  uvarint  (bytes of record data; == footer start offset)
//	  bloomK   uvarint  (hash functions in the bloom filter)
//	  bloomLen uvarint  (bloom bitset length in bytes; power of two)
//	  bloom    bytes
//	  entries, sorted by key (the fence pointers, one per live-at-seal
//	  key; within-segment superseded versions are already resolved):
//	    keyLen uvarint, key bytes, offset uvarint
//	crc32    uint32 LE  (over body)
//	bodyLen  uint32 LE
//	trailer  [8]byte "PQSFOOT1"
//
// The trailer is found by reading the last 16 bytes of the file, so a
// sealed segment is indexed with two small ReadAts — O(index) instead of
// O(data). Any failure to validate (missing trailer, truncated body, crc
// mismatch, inconsistent dataLen/offsets) falls back to the full record
// scan, which rebuilds an identical index from the records themselves.
const (
	footMagic      = 0xF5
	footVersion    = 1
	footTrailerLen = 16 // crc32 + bodyLen + trailer magic
	bloomHashes    = 4
	bloomBitsPerKey = 10
)

var footTrailer = [8]byte{'P', 'Q', 'S', 'F', 'O', 'O', 'T', '1'}

// footer is the decoded form.
type footer struct {
	dataLen int64
	entries []segEntry // sorted by key
	bloom   []byte
	bloomK  int
}

// bloomSize returns the bitset length in bytes for n keys: a power of
// two holding ~bloomBitsPerKey bits per key (~1% false positives at
// k=4), at least 8 bytes so tiny segments still get a well-formed filter.
func bloomSize(n int) int {
	bits := n * bloomBitsPerKey
	size := 8
	for size*8 < bits {
		size *= 2
	}
	return size
}

// bloomHash derives the i-th probe bit for key via double hashing on the
// splitmix64-finalized FNV of the key. The second hash is forced odd so
// the probe sequence walks the full power-of-two bitset.
func bloomProbe(b []byte, key string, i int) (byteIdx int, mask byte) {
	h1 := randx.Key(key)
	h2 := h1
	h2 ^= h2 >> 30
	h2 *= 0xbf58476d1ce4e5b9
	h2 ^= h2 >> 27
	h2 *= 0x94d049bb133111eb
	h2 ^= h2 >> 31
	h2 |= 1
	bit := (h1 + uint64(i)*h2) & uint64(len(b)*8-1)
	return int(bit >> 3), 1 << (bit & 7)
}

func bloomAdd(b []byte, key string) {
	for i := 0; i < bloomHashes; i++ {
		idx, mask := bloomProbe(b, key, i)
		b[idx] |= mask
	}
}

func bloomMayContain(b []byte, k int, key string) bool {
	for i := 0; i < k; i++ {
		idx, mask := bloomProbe(b, key, i)
		if b[idx]&mask == 0 {
			return false
		}
	}
	return true
}

// encodeFooter builds the footer bytes for a segment whose records span
// [0, dataLen) and whose latest version per key is entries. The bloom
// filter baked into the footer is also returned so the sealer can keep
// it in memory without re-deriving it.
func encodeFooter(entries map[string]int64, dataLen int64) ([]byte, segBloom) {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bloom := make([]byte, bloomSize(len(keys)))
	for _, k := range keys {
		bloomAdd(bloom, k)
	}
	var body []byte
	body = binary.AppendUvarint(body, footVersion)
	body = binary.AppendUvarint(body, uint64(len(keys)))
	body = binary.AppendUvarint(body, uint64(dataLen))
	body = binary.AppendUvarint(body, bloomHashes)
	body = binary.AppendUvarint(body, uint64(len(bloom)))
	body = append(body, bloom...)
	for _, k := range keys {
		body = binary.AppendUvarint(body, uint64(len(k)))
		body = append(body, k...)
		body = binary.AppendUvarint(body, uint64(entries[k]))
	}

	out := make([]byte, 0, 1+len(body)+footTrailerLen)
	out = append(out, footMagic)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = append(out, footTrailer[:]...)
	return out, segBloom{bits: bloom, k: bloomHashes}
}

// readFooter validates and decodes the footer of the segment file f
// (size bytes long). It returns:
//
//	ft != nil            — a valid footer; no record bytes were read.
//	ft == nil, evidence  — the trailer magic is present but the footer
//	                       fails validation (corrupt or truncated seal);
//	                       the caller must fall back to a record scan and
//	                       may treat unparseable tail bytes as footer
//	                       debris rather than record corruption.
//	ft == nil, !evidence — no footer (unsealed or legacy segment).
//
// Only I/O failures are returned as errors; every malformed-footer case
// degrades to the scan path.
func readFooter(f *os.File, size int64) (ft *footer, evidence bool, err error) {
	if size < footTrailerLen+1 {
		return nil, false, nil
	}
	var tail [footTrailerLen]byte
	if _, err := f.ReadAt(tail[:], size-footTrailerLen); err != nil {
		return nil, false, fmt.Errorf("pagestore: read footer trailer: %w", err)
	}
	if [8]byte(tail[8:16]) != footTrailer {
		return nil, false, nil
	}
	bodyLen := int64(binary.LittleEndian.Uint32(tail[4:8]))
	footStart := size - footTrailerLen - bodyLen - 1
	if footStart < 0 {
		return nil, true, nil
	}
	buf := make([]byte, 1+bodyLen)
	if _, err := f.ReadAt(buf, footStart); err != nil {
		return nil, true, fmt.Errorf("pagestore: read footer body: %w", err)
	}
	if buf[0] != footMagic {
		return nil, true, nil
	}
	body := buf[1:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail[0:4]) {
		return nil, true, nil
	}
	ft, ok := decodeFooterBody(body, footStart)
	if !ok {
		return nil, true, nil
	}
	return ft, true, nil
}

// decodeFooterBody parses the checksummed footer body. footStart is the
// file offset of the footMagic byte; a well-formed footer's dataLen must
// equal it exactly (records end where the footer begins).
func decodeFooterBody(body []byte, footStart int64) (*footer, bool) {
	uvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(body)
		if n <= 0 {
			return 0, false
		}
		body = body[n:]
		return v, true
	}
	version, ok := uvarint()
	if !ok || version != footVersion {
		return nil, false
	}
	count, ok := uvarint()
	if !ok || count > uint64(footStart) { // each entry spans >= 1 record byte
		return nil, false
	}
	dataLen, ok := uvarint()
	if !ok || int64(dataLen) != footStart {
		return nil, false
	}
	bloomK, ok := uvarint()
	if !ok || bloomK == 0 || bloomK > 16 {
		return nil, false
	}
	bloomLen, ok := uvarint()
	if !ok || bloomLen > uint64(len(body)) || bloomLen&(bloomLen-1) != 0 || bloomLen < 8 {
		return nil, false
	}
	ft := &footer{
		dataLen: int64(dataLen),
		bloom:   append([]byte(nil), body[:bloomLen]...),
		bloomK:  int(bloomK),
		entries: make([]segEntry, 0, count),
	}
	body = body[bloomLen:]
	prevKey := ""
	for i := uint64(0); i < count; i++ {
		klen, ok := uvarint()
		if !ok || klen > maxKeyLen || klen > uint64(len(body)) {
			return nil, false
		}
		key := string(body[:klen])
		body = body[klen:]
		off, ok := uvarint()
		if !ok || int64(off) >= ft.dataLen {
			return nil, false
		}
		if i > 0 && key <= prevKey {
			return nil, false // fence entries must be strictly key-sorted
		}
		prevKey = key
		ft.entries = append(ft.entries, segEntry{key: key, off: int64(off)})
	}
	if len(body) != 0 {
		return nil, false
	}
	return ft, true
}

// sealFile appends a footer to an open segment file and syncs it,
// returning the footer's bloom filter. After sealing, the segment is
// immutable: Open indexes it from the footer and new records go to a
// fresh segment.
func sealFile(f *os.File, entries map[string]int64, dataLen int64) (segBloom, error) {
	foot, bloom := encodeFooter(entries, dataLen)
	if _, err := f.Write(foot); err != nil {
		return segBloom{}, fmt.Errorf("pagestore: write footer: %w", err)
	}
	if err := f.Sync(); err != nil {
		return segBloom{}, fmt.Errorf("pagestore: sync footer: %w", err)
	}
	return bloom, nil
}
