package pagestore

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildMultiSegmentFixture writes a store with many small segments,
// including re-Puts of the same keys spread across segment boundaries so
// the latest-version-wins merge actually has versions to arbitrate.
// Returns the directory and the expected latest body per key.
func buildMultiSegmentFixture(t *testing.T) (string, map[string]string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	want := map[string]string{}
	for round := 0; round < 6; round++ {
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("k%02d", i)
			// Incompressible filler forces frequent rotation; the tag
			// makes each version distinguishable.
			filler := make([]byte, 200)
			rng.Read(filler)
			body := fmt.Sprintf("round%d-%s-%x", round, key, filler)
			if err := s.Put(key, Meta{FetchedAt: float64(round), Status: 200}, []byte(body)); err != nil {
				t.Fatal(err)
			}
			want[key] = body
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("fixture built only %d segments; parallel scan untested", len(segs))
	}
	return dir, want
}

// TestParallelScanMatchesSequential pins the satellite contract of the
// parallel index rebuild: for any worker count the rebuilt index is
// identical to the sequential scan's, and every key resolves to its
// latest version.
func TestParallelScanMatchesSequential(t *testing.T) {
	dir, want := buildMultiSegmentFixture(t)

	seq := open(t, dir, Options{MaxSegmentBytes: 2048, ScanWorkers: 1})
	for _, workers := range []int{0, 2, 8} {
		par := open(t, dir, Options{MaxSegmentBytes: 2048, ScanWorkers: workers})
		if len(par.index) != len(seq.index) {
			t.Fatalf("workers=%d: index size %d, sequential %d", workers, len(par.index), len(seq.index))
		}
		for k, loc := range seq.index {
			if got, ok := par.index[k]; !ok || got != loc {
				t.Fatalf("workers=%d: index[%q] = %+v, sequential %+v", workers, k, got, loc)
			}
		}
		for k, body := range want {
			meta, got, err := par.Get(k)
			if err != nil {
				t.Fatalf("workers=%d: Get(%q): %v", workers, k, err)
			}
			if string(got) != body {
				t.Fatalf("workers=%d: Get(%q) returned a stale version", workers, k)
			}
			if meta.FetchedAt != 5 {
				t.Fatalf("workers=%d: Get(%q) meta.FetchedAt = %g, want latest round", workers, k, meta.FetchedAt)
			}
		}
	}
}

// TestParallelScanTornTail checks that crash recovery still truncates the
// torn tail of the newest segment when that segment is scanned by a
// worker goroutine.
func TestParallelScanTornTail(t *testing.T) {
	dir, want := buildMultiSegmentFixture(t)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("seg-%06d.dat", segs[len(segs)-1]))
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, Options{MaxSegmentBytes: 2048, ScanWorkers: 8})
	// Exactly one record (the torn tail) is lost; every surviving key
	// still reads back.
	if got := s.Len(); got != len(want) && got != len(want)-1 {
		t.Fatalf("Len = %d, want %d or %d", got, len(want), len(want)-1)
	}
	for k := range want {
		if !s.Has(k) {
			continue // the torn record's key reverted or vanished; fine
		}
		if _, _, err := s.Get(k); err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
	}
	if err := s.Put("post-recovery", Meta{Status: 200}, []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

// TestParallelScanReportsEarliestError checks that a corrupt record in an
// early segment is reported as that segment's error even when later
// segments are scanned concurrently (and possibly finish first). Footers
// are stripped first: with a valid footer the corrupt record body is
// never read on Open (the per-record CRC still rejects it at Get time),
// so only the legacy scan path reports corruption at open.
func TestParallelScanReportsEarliestError(t *testing.T) {
	dir, _ := buildMultiSegmentFixture(t)
	stripFooters(t, dir)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("seg-%06d.dat", segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[5] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{MaxSegmentBytes: 2048, ScanWorkers: 8})
	if err == nil {
		t.Fatal("corrupt early segment accepted")
	}
	if want := fmt.Sprintf("segment %d ", segs[0]); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the earliest corrupt segment (%s)", err, want)
	}
}
