// Package pagestore is the crawl document repository: a log-structured,
// segmented, append-only store for fetched page bodies. The paper's
// crawler kept 4.6–5 million documents per snapshot (§8.1); this store
// provides the equivalent substrate at laptop scale, with the properties
// a real crawl pipeline needs:
//
//   - append-only segment files with per-record CRC32, so a crash mid-write
//     loses at most the torn tail record (recovered and truncated on open);
//   - an in-memory key index rebuilt by scanning segments on open
//     (latest version of a key wins, enabling re-crawls of the same URL);
//   - flate compression of bodies;
//   - compaction that rewrites only live records and drops superseded
//     versions.
//
// Keys are arbitrary strings; the crawl pipeline uses
// "<snapshotLabel>/<canonicalURL>" so one repository holds every crawl.
package pagestore

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Meta is the per-document metadata stored alongside the body.
type Meta struct {
	// FetchedAt is the crawl time (simulation weeks or unix seconds —
	// the store does not interpret it).
	FetchedAt float64
	// Status is the HTTP status the document was fetched with.
	Status int
}

// Store is a page repository rooted at a directory. It is safe for
// concurrent use.
type Store struct {
	mu     sync.Mutex
	dir    string
	active *os.File // current segment, opened for append
	actID  int      // numeric id of the active segment
	actLen int64    // current size of the active segment
	maxSeg int64    // rotation threshold
	index  map[string]location
	closed bool
}

// location points at one record.
type location struct {
	seg    int
	offset int64
}

// Options tunes Open.
type Options struct {
	// MaxSegmentBytes triggers rotation to a new segment file once the
	// active one exceeds this size (default 64 MiB).
	MaxSegmentBytes int64
	// ScanWorkers bounds the goroutines used to scan segment files when
	// rebuilding the key index on Open. 0 uses GOMAXPROCS; 1 scans
	// sequentially. The rebuilt index is identical either way: scans
	// only collect per-segment records, and the merge applies them in
	// segment order so the latest version of a key always wins.
	ScanWorkers int
}

// Errors returned by the store.
var (
	ErrClosed   = errors.New("pagestore: store closed")
	ErrNotFound = errors.New("pagestore: key not found")
	ErrCorrupt  = errors.New("pagestore: corrupt record")
)

const (
	defaultMaxSeg = 64 << 20
	maxKeyLen     = 1 << 16
	maxBodyLen    = 64 << 20
)

// Open opens (or creates) a repository in dir, rebuilding the key index
// by scanning every segment. A torn tail record in the newest segment is
// truncated away; corruption anywhere else is reported as an error.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxSegmentBytes == 0 {
		opts.MaxSegmentBytes = defaultMaxSeg
	}
	if opts.MaxSegmentBytes < 1024 {
		return nil, fmt.Errorf("pagestore: MaxSegmentBytes %d too small", opts.MaxSegmentBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pagestore: mkdir: %w", err)
	}
	s := &Store{
		dir:    dir,
		maxSeg: opts.MaxSegmentBytes,
		index:  make(map[string]location),
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if err := s.rebuildIndex(segs, opts.ScanWorkers); err != nil {
		return nil, err
	}
	// Open (or create) the active segment: the last existing one, or #1.
	s.actID = 1
	if len(segs) > 0 {
		s.actID = segs[len(segs)-1]
	}
	f, err := os.OpenFile(s.segPath(s.actID), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: open active segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s.active = f
	s.actLen = st.Size()
	return s, nil
}

func (s *Store) segPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%06d.dat", id))
}

// listSegments returns the numeric ids of existing segments, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("pagestore: readdir: %w", err)
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".dat") {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(name, "seg-%06d.dat", &id); err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// Record layout (little-endian):
//
//	magic    byte 0xA7
//	keyLen   uvarint
//	key      bytes
//	fetched  float64 bits
//	status   uvarint
//	bodyLen  uvarint          (compressed length)
//	body     flate bytes
//	crc32    uint32           (over everything after the magic)
const recMagic = 0xA7

// appendRecord encodes a record into buf.
func appendRecord(buf []byte, key string, meta Meta, compressed []byte) []byte {
	buf = append(buf, recMagic)
	payloadStart := len(buf)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(meta.FetchedAt))
	buf = binary.AppendUvarint(buf, uint64(meta.Status))
	buf = binary.AppendUvarint(buf, uint64(len(compressed)))
	buf = append(buf, compressed...)
	crc := crc32.ChecksumIEEE(buf[payloadStart:])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf
}

// segEntry is one record discovered while scanning a segment.
type segEntry struct {
	key string
	off int64
}

// rebuildIndex scans the segments (fanning the per-file scans out over
// workers) and merges the discovered records into the key index in
// segment order, so the latest version of a key wins exactly as a
// sequential replay would decide. Errors are reported for the earliest
// failing segment regardless of which worker hit it first.
func (s *Store) rebuildIndex(segs []int, workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(segs) {
		workers = len(segs)
	}
	ents := make([][]segEntry, len(segs))
	errs := make([]error, len(segs))
	if workers <= 1 {
		for i, id := range segs {
			ents[i], errs[i] = s.scanSegmentFile(id, i == len(segs)-1)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(segs) {
						return
					}
					ents[i], errs[i] = s.scanSegmentFile(segs[i], i == len(segs)-1)
				}
			}()
		}
		wg.Wait()
	}
	for i, id := range segs {
		if errs[i] != nil {
			return errs[i]
		}
		for _, e := range ents[i] {
			s.index[e.key] = location{seg: id, offset: e.off}
		}
	}
	return nil
}

// scanSegmentFile replays one segment, returning its records in file
// order. For the newest segment (last == true) a torn tail record is
// truncated away instead of failing.
func (s *Store) scanSegmentFile(id int, last bool) ([]segEntry, error) {
	path := s.segPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pagestore: read segment %d: %w", id, err)
	}
	var ents []segEntry
	off := int64(0)
	for off < int64(len(data)) {
		recLen, key, err := verifyRecordAt(data, off)
		if err != nil {
			if last && errors.Is(err, io.ErrUnexpectedEOF) {
				// crash recovery: drop the torn tail
				if terr := os.Truncate(path, off); terr != nil {
					return nil, fmt.Errorf("pagestore: truncate torn tail: %w", terr)
				}
				return ents, nil
			}
			return nil, fmt.Errorf("pagestore: segment %d offset %d: %w", id, off, err)
		}
		ents = append(ents, segEntry{key: key, off: off})
		off += recLen
	}
	return ents, nil
}

// verifyRecordAt checks the record starting at data[off], returning its
// total length and key. Structural damage inside the buffer is ErrCorrupt;
// running past the end is io.ErrUnexpectedEOF (a torn write).
func verifyRecordAt(data []byte, off int64) (int64, string, error) {
	r := bytes.NewReader(data[off:])
	if b, err := r.ReadByte(); err != nil {
		return 0, "", io.ErrUnexpectedEOF
	} else if b != recMagic {
		return 0, "", fmt.Errorf("%w: magic 0x%02x", ErrCorrupt, b)
	}
	klen, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, "", io.ErrUnexpectedEOF
	}
	if klen > maxKeyLen {
		return 0, "", fmt.Errorf("%w: key length %d", ErrCorrupt, klen)
	}
	kb := make([]byte, klen)
	if _, err := io.ReadFull(r, kb); err != nil {
		return 0, "", io.ErrUnexpectedEOF
	}
	if _, err := r.Seek(8, io.SeekCurrent); err != nil {
		return 0, "", io.ErrUnexpectedEOF
	}
	if r.Len() < 8 {
		return 0, "", io.ErrUnexpectedEOF
	}
	if _, err := binary.ReadUvarint(r); err != nil { // status
		return 0, "", io.ErrUnexpectedEOF
	}
	blen, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, "", io.ErrUnexpectedEOF
	}
	if blen > maxBodyLen {
		return 0, "", fmt.Errorf("%w: body length %d", ErrCorrupt, blen)
	}
	if int64(r.Len()) < int64(blen)+4 {
		return 0, "", io.ErrUnexpectedEOF
	}
	if _, err := r.Seek(int64(blen), io.SeekCurrent); err != nil {
		return 0, "", io.ErrUnexpectedEOF
	}
	consumedPayload := int64(len(data)) - off - int64(r.Len())
	payload := data[off+1 : off+consumedPayload]
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return 0, "", io.ErrUnexpectedEOF
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return 0, "", fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	total := consumedPayload + 4
	return total, string(kb), nil
}

// Put stores (or replaces) the body under key.
func (s *Store) Put(key string, meta Meta, body []byte) error {
	if key == "" || len(key) > maxKeyLen {
		return fmt.Errorf("pagestore: invalid key length %d", len(key))
	}
	var cbuf bytes.Buffer
	fw, err := flate.NewWriter(&cbuf, flate.BestSpeed)
	if err != nil {
		return fmt.Errorf("pagestore: flate: %w", err)
	}
	if _, err := fw.Write(body); err != nil {
		return fmt.Errorf("pagestore: compress: %w", err)
	}
	if err := fw.Close(); err != nil {
		return fmt.Errorf("pagestore: compress close: %w", err)
	}
	rec := appendRecord(nil, key, meta, cbuf.Bytes())

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.actLen > 0 && s.actLen+int64(len(rec)) > s.maxSeg {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	offset := s.actLen
	if _, err := s.active.Write(rec); err != nil {
		return fmt.Errorf("pagestore: append: %w", err)
	}
	s.actLen += int64(len(rec))
	s.index[key] = location{seg: s.actID, offset: offset}
	return nil
}

func (s *Store) rotateLocked() error {
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("pagestore: sync before rotate: %w", err)
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("pagestore: close before rotate: %w", err)
	}
	s.actID++
	f, err := os.OpenFile(s.segPath(s.actID), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("pagestore: rotate: %w", err)
	}
	s.active = f
	s.actLen = 0
	return nil
}

// Get returns the latest body stored under key.
func (s *Store) Get(key string) (Meta, []byte, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Meta{}, nil, ErrClosed
	}
	loc, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		return Meta{}, nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return s.readAt(loc)
}

func (s *Store) readAt(loc location) (Meta, []byte, error) {
	data, err := os.ReadFile(s.segPath(loc.seg))
	if err != nil {
		return Meta{}, nil, fmt.Errorf("pagestore: read segment: %w", err)
	}
	if loc.offset >= int64(len(data)) {
		return Meta{}, nil, fmt.Errorf("%w: offset beyond segment", ErrCorrupt)
	}
	if _, _, err := verifyRecordAt(data, loc.offset); err != nil {
		return Meta{}, nil, err
	}
	r := bytes.NewReader(data[loc.offset:])
	if _, err := r.ReadByte(); err != nil { // skip magic, already verified
		return Meta{}, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	_, meta, compressed, err := readRecord0(r)
	if err != nil {
		return Meta{}, nil, err
	}
	body, err := io.ReadAll(flate.NewReader(bytes.NewReader(compressed)))
	if err != nil {
		return Meta{}, nil, fmt.Errorf("%w: decompress: %v", ErrCorrupt, err)
	}
	return meta, body, nil
}

// readRecord0 parses the record fields after the magic byte.
func readRecord0(r *bytes.Reader) (string, Meta, []byte, error) {
	var meta Meta
	klen, err := binary.ReadUvarint(r)
	if err != nil {
		return "", meta, nil, io.ErrUnexpectedEOF
	}
	kb := make([]byte, klen)
	if _, err := io.ReadFull(r, kb); err != nil {
		return "", meta, nil, io.ErrUnexpectedEOF
	}
	var fbuf [8]byte
	if _, err := io.ReadFull(r, fbuf[:]); err != nil {
		return "", meta, nil, io.ErrUnexpectedEOF
	}
	meta.FetchedAt = math.Float64frombits(binary.LittleEndian.Uint64(fbuf[:]))
	status, err := binary.ReadUvarint(r)
	if err != nil {
		return "", meta, nil, io.ErrUnexpectedEOF
	}
	meta.Status = int(status)
	blen, err := binary.ReadUvarint(r)
	if err != nil {
		return "", meta, nil, io.ErrUnexpectedEOF
	}
	compressed := make([]byte, blen)
	if _, err := io.ReadFull(r, compressed); err != nil {
		return "", meta, nil, io.ErrUnexpectedEOF
	}
	return string(kb), meta, compressed, nil
}

// Has reports whether key is stored.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Keys returns the live keys, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// KeysWithPrefix returns the live keys with the given prefix, sorted. The
// crawl pipeline uses it to enumerate one snapshot's documents.
func (s *Store) KeysWithPrefix(prefix string) []string {
	var out []string
	for _, k := range s.Keys() {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	return out
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.active.Sync()
}

// Close syncs and closes the store. Further operations fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.active.Sync(); err != nil {
		s.active.Close()
		return err
	}
	return s.active.Close()
}

// Compact rewrites every live record into fresh segments and removes the
// old files, dropping superseded versions. The store stays usable
// afterwards.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// Snapshot live locations.
	type kv struct {
		key string
		loc location
	}
	live := make([]kv, 0, len(s.index))
	for k, loc := range s.index {
		live = append(live, kv{k, loc})
	}
	sort.Slice(live, func(a, b int) bool { return live[a].key < live[b].key })

	oldSegs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	newID := s.actID + 1
	if err := s.active.Sync(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(s.segPath(newID), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("pagestore: compact segment: %w", err)
	}
	newIndex := make(map[string]location, len(live))
	var offset int64
	// Cache segment contents while copying.
	segData := map[int][]byte{}
	for _, e := range live {
		data, ok := segData[e.loc.seg]
		if !ok {
			data, err = os.ReadFile(s.segPath(e.loc.seg))
			if err != nil {
				f.Close()
				return err
			}
			segData[e.loc.seg] = data
		}
		recLen, _, err := verifyRecordAt(data, e.loc.offset)
		if err != nil {
			f.Close()
			return err
		}
		rec := data[e.loc.offset : e.loc.offset+recLen]
		if _, err := f.Write(rec); err != nil {
			f.Close()
			return fmt.Errorf("pagestore: compact write: %w", err)
		}
		newIndex[e.key] = location{seg: newID, offset: offset}
		offset += recLen
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	// Swap in the new state, delete the old segments.
	s.active = f
	s.actID = newID
	s.actLen = offset
	s.index = newIndex
	for _, id := range oldSegs {
		if id != newID {
			if err := os.Remove(s.segPath(id)); err != nil {
				return fmt.Errorf("pagestore: remove old segment: %w", err)
			}
		}
	}
	return nil
}
