// Package pagestore is the crawl document repository: a log-structured,
// segmented, append-only store for fetched page bodies. The paper's
// crawler kept 4.6–5 million documents per snapshot (§8.1); this store
// provides the equivalent substrate at laptop scale, with the properties
// a real crawl pipeline needs:
//
//   - append-only segment files with per-record CRC32, so a crash mid-write
//     loses at most the torn tail record (recovered and truncated on open);
//   - an in-memory key index rebuilt on open (latest version of a key
//     wins, enabling re-crawls of the same URL);
//   - self-indexing sealed segments: rotation and compaction append a
//     checksummed footer (key→offset fence pointers, a bloom filter,
//     record count and data length) so Open indexes sealed segments in
//     O(index) without reading record bodies — only the unsealed active
//     tail is scanned. A missing, truncated or corrupt footer falls back
//     to the full record scan and yields an identical index;
//   - flate compression of bodies;
//   - compaction that streams live records segment by segment (peak
//     memory one source segment, not the store) and drops superseded
//     versions.
//
// Keys are arbitrary strings; the crawl pipeline uses
// "<snapshotLabel>/<canonicalURL>" so one repository holds every crawl.
package pagestore

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Meta is the per-document metadata stored alongside the body.
type Meta struct {
	// FetchedAt is the crawl time (simulation weeks or unix seconds —
	// the store does not interpret it).
	FetchedAt float64
	// Status is the HTTP status the document was fetched with.
	Status int
}

// Store is a page repository rooted at a directory. It is safe for
// concurrent use.
type Store struct {
	mu         sync.Mutex
	dir        string
	active     *os.File // current segment, opened for append
	actID      int      // numeric id of the active segment
	actLen     int64    // current size of the active segment
	actEntries map[string]int64 // latest offset per key in the active segment (footer material)
	maxSeg     int64    // rotation threshold
	index      map[string]location
	blooms     map[int]segBloom // per sealed segment, from its footer
	closed     bool

	// openStats records how the index was rebuilt; tests use it to pin
	// the O(index) cold-start contract.
	openStats struct {
		footerSegments int // indexed from a valid footer, no record reads
		scannedSegments int // indexed by replaying records
	}
}

// segBloom is a sealed segment's bloom filter, kept in memory for
// cross-segment membership prefilters (e.g. the multi-store merge).
type segBloom struct {
	bits []byte
	k    int
}

// location points at one record.
type location struct {
	seg    int
	offset int64
}

// Options tunes Open.
type Options struct {
	// MaxSegmentBytes triggers rotation to a new segment file once the
	// active one exceeds this size (default 64 MiB).
	MaxSegmentBytes int64
	// ScanWorkers bounds the goroutines used to scan segment files when
	// rebuilding the key index on Open. 0 uses GOMAXPROCS; 1 scans
	// sequentially. The rebuilt index is identical either way: scans
	// only collect per-segment records, and the merge applies them in
	// segment order so the latest version of a key always wins.
	ScanWorkers int
}

// Errors returned by the store.
var (
	ErrClosed   = errors.New("pagestore: store closed")
	ErrNotFound = errors.New("pagestore: key not found")
	ErrCorrupt  = errors.New("pagestore: corrupt record")
)

const (
	defaultMaxSeg = 64 << 20
	maxKeyLen     = 1 << 16
	maxBodyLen    = 64 << 20
)

// Open opens (or creates) a repository in dir, rebuilding the key index
// from segment footers where present and by scanning records otherwise.
// A torn tail record (or interrupted footer) in the newest segment is
// truncated away; corruption anywhere else is reported as an error. If
// the newest segment is sealed, appends go to a fresh segment — sealed
// segments are immutable.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxSegmentBytes == 0 {
		opts.MaxSegmentBytes = defaultMaxSeg
	}
	if opts.MaxSegmentBytes < 1024 {
		return nil, fmt.Errorf("pagestore: MaxSegmentBytes %d too small", opts.MaxSegmentBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pagestore: mkdir: %w", err)
	}
	s := &Store{
		dir:        dir,
		maxSeg:     opts.MaxSegmentBytes,
		index:      make(map[string]location),
		actEntries: make(map[string]int64),
		blooms:     make(map[int]segBloom),
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	lastSealed, err := s.rebuildIndex(segs, opts.ScanWorkers)
	if err != nil {
		return nil, err
	}
	// Open (or create) the active segment: the last existing one if it is
	// still appendable, otherwise a fresh one after the sealed tail.
	s.actID = 1
	if len(segs) > 0 {
		s.actID = segs[len(segs)-1]
		if lastSealed {
			s.actID++
			s.actEntries = make(map[string]int64)
		}
	}
	f, err := os.OpenFile(s.segPath(s.actID), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: open active segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s.active = f
	s.actLen = st.Size()
	return s, nil
}

func (s *Store) segPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%06d.dat", id))
}

// listSegments returns the numeric ids of existing segments, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("pagestore: readdir: %w", err)
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".dat") {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(name, "seg-%06d.dat", &id); err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// Record layout (little-endian):
//
//	magic    byte 0xA7
//	keyLen   uvarint
//	key      bytes
//	fetched  float64 bits
//	status   uvarint
//	bodyLen  uvarint          (compressed length)
//	body     flate bytes
//	crc32    uint32           (over everything after the magic)
const recMagic = 0xA7

// appendRecord encodes a record into buf.
func appendRecord(buf []byte, key string, meta Meta, compressed []byte) []byte {
	buf = append(buf, recMagic)
	payloadStart := len(buf)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(meta.FetchedAt))
	buf = binary.AppendUvarint(buf, uint64(meta.Status))
	buf = binary.AppendUvarint(buf, uint64(len(compressed)))
	buf = append(buf, compressed...)
	crc := crc32.ChecksumIEEE(buf[payloadStart:])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf
}

// segEntry is one record discovered while indexing a segment.
type segEntry struct {
	key string
	off int64
}

// segLoad is the result of indexing one segment on Open.
type segLoad struct {
	entries []segEntry // replay order (scan) or key order (footer)
	sealed  bool       // indexed from a valid footer
	bloom   segBloom   // only when sealed
}

// rebuildIndex indexes the segments (fanning the per-file loads out over
// workers) and merges the discovered records into the key index in
// segment order, so the latest version of a key wins exactly as a
// sequential replay would decide. Sealed segments are read from their
// footers without touching record bodies; unsealed (or corrupt-footer)
// segments fall back to a record scan. Errors are reported for the
// earliest failing segment regardless of which worker hit it first.
// Returns whether the newest segment is sealed.
func (s *Store) rebuildIndex(segs []int, workers int) (lastSealed bool, err error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(segs) {
		workers = len(segs)
	}
	loads := make([]segLoad, len(segs))
	errs := make([]error, len(segs))
	if workers <= 1 {
		for i, id := range segs {
			loads[i], errs[i] = s.loadSegmentIndex(id, i == len(segs)-1)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(segs) {
						return
					}
					loads[i], errs[i] = s.loadSegmentIndex(segs[i], i == len(segs)-1)
				}
			}()
		}
		wg.Wait()
	}
	for i, id := range segs {
		if errs[i] != nil {
			return false, errs[i]
		}
		for _, e := range loads[i].entries {
			s.index[e.key] = location{seg: id, offset: e.off}
		}
		if loads[i].sealed {
			s.blooms[id] = loads[i].bloom
			s.openStats.footerSegments++
		} else {
			s.openStats.scannedSegments++
		}
	}
	if n := len(segs); n > 0 {
		lastSealed = loads[n-1].sealed
		if !lastSealed {
			// The newest segment stays active: seed its footer material
			// so a later rotation can seal it.
			for _, e := range loads[n-1].entries {
				s.actEntries[e.key] = e.off
			}
		}
	}
	return lastSealed, nil
}

// loadSegmentIndex indexes one segment: footer fast path when the seal
// validates, record scan otherwise.
func (s *Store) loadSegmentIndex(id int, last bool) (segLoad, error) {
	path := s.segPath(id)
	f, err := os.Open(path)
	if err != nil {
		return segLoad{}, fmt.Errorf("pagestore: open segment %d: %w", id, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return segLoad{}, fmt.Errorf("pagestore: stat segment %d: %w", id, err)
	}
	ft, evidence, err := readFooter(f, st.Size())
	f.Close()
	if err != nil {
		return segLoad{}, err
	}
	if ft != nil {
		return segLoad{entries: ft.entries, sealed: true, bloom: segBloom{bits: ft.bloom, k: ft.bloomK}}, nil
	}
	ents, err := s.scanSegmentFile(id, last, evidence)
	if err != nil {
		return segLoad{}, err
	}
	return segLoad{entries: ents}, nil
}

// scanSegmentFile replays one segment, returning its records in file
// order — the fallback when no valid footer exists. Recovery rules at a
// parse failure, in order:
//
//   - the failing byte is footMagic: a footer starts here (its checksum
//     or trailer failed validation, or an earlier corruption made us
//     scan a healthy sealed segment); index what was scanned. For the
//     newest segment the debris is truncated so appends can resume.
//   - footerEvidence (a footer trailer exists at EOF but failed
//     validation): the unparseable tail is seal debris, same handling.
//   - newest segment, clean end-of-buffer overrun: a torn tail write;
//     truncate it away.
//   - anything else is corruption and fails the open.
func (s *Store) scanSegmentFile(id int, last, footerEvidence bool) ([]segEntry, error) {
	path := s.segPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pagestore: read segment %d: %w", id, err)
	}
	var ents []segEntry
	off := int64(0)
	for off < int64(len(data)) {
		if data[off] == footMagic {
			if last {
				if terr := os.Truncate(path, off); terr != nil {
					return nil, fmt.Errorf("pagestore: truncate footer debris: %w", terr)
				}
			}
			return ents, nil
		}
		recLen, key, err := verifyRecordAt(data, off)
		if err != nil {
			if footerEvidence {
				if last {
					if terr := os.Truncate(path, off); terr != nil {
						return nil, fmt.Errorf("pagestore: truncate footer debris: %w", terr)
					}
				}
				return ents, nil
			}
			if last && errors.Is(err, io.ErrUnexpectedEOF) {
				// crash recovery: drop the torn tail
				if terr := os.Truncate(path, off); terr != nil {
					return nil, fmt.Errorf("pagestore: truncate torn tail: %w", terr)
				}
				return ents, nil
			}
			return nil, fmt.Errorf("pagestore: segment %d offset %d: %w", id, off, err)
		}
		ents = append(ents, segEntry{key: key, off: off})
		off += recLen
	}
	return ents, nil
}

// verifyRecordAt checks the record starting at data[off], returning its
// total length and key. Structural damage inside the buffer is ErrCorrupt;
// running past the end is io.ErrUnexpectedEOF (a torn write).
func verifyRecordAt(data []byte, off int64) (int64, string, error) {
	r := bytes.NewReader(data[off:])
	if b, err := r.ReadByte(); err != nil {
		return 0, "", io.ErrUnexpectedEOF
	} else if b != recMagic {
		return 0, "", fmt.Errorf("%w: magic 0x%02x", ErrCorrupt, b)
	}
	klen, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, "", io.ErrUnexpectedEOF
	}
	if klen > maxKeyLen {
		return 0, "", fmt.Errorf("%w: key length %d", ErrCorrupt, klen)
	}
	kb := make([]byte, klen)
	if _, err := io.ReadFull(r, kb); err != nil {
		return 0, "", io.ErrUnexpectedEOF
	}
	if _, err := r.Seek(8, io.SeekCurrent); err != nil {
		return 0, "", io.ErrUnexpectedEOF
	}
	if r.Len() < 8 {
		return 0, "", io.ErrUnexpectedEOF
	}
	if _, err := binary.ReadUvarint(r); err != nil { // status
		return 0, "", io.ErrUnexpectedEOF
	}
	blen, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, "", io.ErrUnexpectedEOF
	}
	if blen > maxBodyLen {
		return 0, "", fmt.Errorf("%w: body length %d", ErrCorrupt, blen)
	}
	if int64(r.Len()) < int64(blen)+4 {
		return 0, "", io.ErrUnexpectedEOF
	}
	if _, err := r.Seek(int64(blen), io.SeekCurrent); err != nil {
		return 0, "", io.ErrUnexpectedEOF
	}
	consumedPayload := int64(len(data)) - off - int64(r.Len())
	payload := data[off+1 : off+consumedPayload]
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return 0, "", io.ErrUnexpectedEOF
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return 0, "", fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	total := consumedPayload + 4
	return total, string(kb), nil
}

// Put stores (or replaces) the body under key.
func (s *Store) Put(key string, meta Meta, body []byte) error {
	if key == "" || len(key) > maxKeyLen {
		return fmt.Errorf("pagestore: invalid key length %d", len(key))
	}
	var cbuf bytes.Buffer
	fw, err := flate.NewWriter(&cbuf, flate.BestSpeed)
	if err != nil {
		return fmt.Errorf("pagestore: flate: %w", err)
	}
	if _, err := fw.Write(body); err != nil {
		return fmt.Errorf("pagestore: compress: %w", err)
	}
	if err := fw.Close(); err != nil {
		return fmt.Errorf("pagestore: compress close: %w", err)
	}
	rec := appendRecord(nil, key, meta, cbuf.Bytes())

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.actLen > 0 && s.actLen+int64(len(rec)) > s.maxSeg {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	offset := s.actLen
	if _, err := s.active.Write(rec); err != nil {
		return fmt.Errorf("pagestore: append: %w", err)
	}
	s.actLen += int64(len(rec))
	s.index[key] = location{seg: s.actID, offset: offset}
	s.actEntries[key] = offset
	return nil
}

// rotateLocked seals the active segment — appends its footer so future
// Opens index it without a scan — and starts a fresh one.
func (s *Store) rotateLocked() error {
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("pagestore: sync before rotate: %w", err)
	}
	bloom, err := sealFile(s.active, s.actEntries, s.actLen)
	if err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("pagestore: close before rotate: %w", err)
	}
	s.blooms[s.actID] = bloom
	s.actID++
	f, err := os.OpenFile(s.segPath(s.actID), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("pagestore: rotate: %w", err)
	}
	s.active = f
	s.actLen = 0
	s.actEntries = make(map[string]int64)
	return nil
}

// Get returns the latest body stored under key.
func (s *Store) Get(key string) (Meta, []byte, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Meta{}, nil, ErrClosed
	}
	loc, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		return Meta{}, nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return s.readAt(loc)
}

func (s *Store) readAt(loc location) (Meta, []byte, error) {
	data, err := os.ReadFile(s.segPath(loc.seg))
	if err != nil {
		return Meta{}, nil, fmt.Errorf("pagestore: read segment: %w", err)
	}
	return decodeRecordAt(data, loc.offset)
}

// decodeRecordAt verifies the record at data[off] and returns its
// metadata and decompressed body.
func decodeRecordAt(data []byte, off int64) (Meta, []byte, error) {
	if off >= int64(len(data)) {
		return Meta{}, nil, fmt.Errorf("%w: offset beyond segment", ErrCorrupt)
	}
	if _, _, err := verifyRecordAt(data, off); err != nil {
		return Meta{}, nil, err
	}
	r := bytes.NewReader(data[off:])
	if _, err := r.ReadByte(); err != nil { // skip magic, already verified
		return Meta{}, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	_, meta, compressed, err := readRecord0(r)
	if err != nil {
		return Meta{}, nil, err
	}
	body, err := io.ReadAll(flate.NewReader(bytes.NewReader(compressed)))
	if err != nil {
		return Meta{}, nil, fmt.Errorf("%w: decompress: %v", ErrCorrupt, err)
	}
	return meta, body, nil
}

// readRecord0 parses the record fields after the magic byte.
func readRecord0(r *bytes.Reader) (string, Meta, []byte, error) {
	var meta Meta
	klen, err := binary.ReadUvarint(r)
	if err != nil {
		return "", meta, nil, io.ErrUnexpectedEOF
	}
	kb := make([]byte, klen)
	if _, err := io.ReadFull(r, kb); err != nil {
		return "", meta, nil, io.ErrUnexpectedEOF
	}
	var fbuf [8]byte
	if _, err := io.ReadFull(r, fbuf[:]); err != nil {
		return "", meta, nil, io.ErrUnexpectedEOF
	}
	meta.FetchedAt = math.Float64frombits(binary.LittleEndian.Uint64(fbuf[:]))
	status, err := binary.ReadUvarint(r)
	if err != nil {
		return "", meta, nil, io.ErrUnexpectedEOF
	}
	meta.Status = int(status)
	blen, err := binary.ReadUvarint(r)
	if err != nil {
		return "", meta, nil, io.ErrUnexpectedEOF
	}
	compressed := make([]byte, blen)
	if _, err := io.ReadFull(r, compressed); err != nil {
		return "", meta, nil, io.ErrUnexpectedEOF
	}
	return string(kb), meta, compressed, nil
}

// Record is one live document streamed out of the store — the unit the
// corpus engine's per-segment mappers consume.
type Record struct {
	Key  string
	Meta Meta
	Body []byte
}

// SegmentIDs returns the distinct segments currently holding at least
// one live record, ascending. Together with ReadLive it partitions the
// live record set: every live record is homed in exactly one segment.
func (s *Store) SegmentIDs() []int {
	s.mu.Lock()
	seen := make(map[int]struct{})
	for _, loc := range s.index {
		seen[loc.seg] = struct{}{}
	}
	s.mu.Unlock()
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// ReadLive returns the live records homed in segment seg in record
// (offset) order, bodies decompressed. It reads the segment file once;
// peak memory is the segment plus its decompressed live bodies. The
// live set is snapshotted at call time: a concurrent Compact may remove
// the segment underneath the read, which reports an error rather than
// partial data.
func (s *Store) ReadLive(seg int) ([]Record, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	var ents []segEntry
	for k, loc := range s.index {
		if loc.seg == seg {
			ents = append(ents, segEntry{key: k, off: loc.offset})
		}
	}
	s.mu.Unlock()
	if len(ents) == 0 {
		return nil, nil
	}
	sort.Slice(ents, func(a, b int) bool { return ents[a].off < ents[b].off })
	data, err := os.ReadFile(s.segPath(seg))
	if err != nil {
		return nil, fmt.Errorf("pagestore: read segment %d: %w", seg, err)
	}
	recs := make([]Record, 0, len(ents))
	for _, e := range ents {
		meta, body, err := decodeRecordAt(data, e.off)
		if err != nil {
			return nil, fmt.Errorf("pagestore: segment %d offset %d: %w", seg, e.off, err)
		}
		recs = append(recs, Record{Key: e.key, Meta: meta, Body: body})
	}
	return recs, nil
}

// MayContain reports whether segment seg can hold a record for key,
// consulting the sealed segment's bloom filter. False positives are
// possible (~1% at the footer's sizing); false negatives are not.
// Unsealed segments (and segments without an in-memory filter) answer
// true. This is the cross-store prefilter for merge workloads: a key
// lookup can skip every sealed segment whose filter excludes it.
func (s *Store) MayContain(seg int, key string) bool {
	s.mu.Lock()
	b, ok := s.blooms[seg]
	s.mu.Unlock()
	if !ok {
		return true
	}
	return bloomMayContain(b.bits, b.k, key)
}

// Has reports whether key is stored.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Keys returns the live keys, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// KeysWithPrefix returns the live keys with the given prefix, sorted. The
// crawl pipeline uses it to enumerate one snapshot's documents.
func (s *Store) KeysWithPrefix(prefix string) []string {
	var out []string
	for _, k := range s.Keys() {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	return out
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.active.Sync()
}

// Close syncs and closes the store. Further operations fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.active.Sync(); err != nil {
		s.active.Close()
		return err
	}
	return s.active.Close()
}

// Compact rewrites every live record into fresh segments and removes the
// old files, dropping superseded versions. Live records are streamed one
// source segment at a time — read, copied in offset order, released — so
// peak memory is one segment, not the store. Output segments are rotated
// at the store's segment-size threshold and sealed (footered) as they
// fill; the final, partial one stays unsealed as the new active segment.
// The store stays usable afterwards — including after a failed compact,
// which restores the previous active segment and removes any partial
// output.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// Group live locations by their home segment; copy order is
	// (segment, offset) ascending.
	bySeg := make(map[int][]segEntry)
	for k, loc := range s.index {
		bySeg[loc.seg] = append(bySeg[loc.seg], segEntry{key: k, off: loc.offset})
	}
	srcIDs := make([]int, 0, len(bySeg))
	for id := range bySeg {
		srcIDs = append(srcIDs, id)
	}
	sort.Ints(srcIDs)
	for _, id := range srcIDs {
		ents := bySeg[id]
		sort.Slice(ents, func(a, b int) bool { return ents[a].off < ents[b].off })
	}

	oldSegs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	oldActID := s.actID
	if err := s.active.Sync(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		// The handle is in an unknown state; fall through to the
		// recovery path, which reopens the segment for append.
		return s.compactFailLocked(nil, nil, oldActID, err)
	}

	var (
		out        *os.File
		outID      = s.actID
		outLen     int64
		outEntries map[string]int64
		created    []int
		newIndex   = make(map[string]location, len(s.index))
		newBlooms  = make(map[int]segBloom)
	)
	openOut := func() error {
		outID++
		f, err := os.OpenFile(s.segPath(outID), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
		if err != nil {
			return fmt.Errorf("pagestore: compact segment: %w", err)
		}
		out = f
		outLen = 0
		outEntries = make(map[string]int64)
		created = append(created, outID)
		return nil
	}
	if err := openOut(); err != nil {
		return s.compactFailLocked(nil, created, oldActID, err)
	}
	for _, sid := range srcIDs {
		data, err := os.ReadFile(s.segPath(sid))
		if err != nil {
			return s.compactFailLocked(out, created, oldActID, err)
		}
		for _, e := range bySeg[sid] {
			recLen, _, err := verifyRecordAt(data, e.off)
			if err != nil {
				return s.compactFailLocked(out, created, oldActID, err)
			}
			rec := data[e.off : e.off+recLen]
			if outLen > 0 && outLen+int64(len(rec)) > s.maxSeg {
				bloom, err := sealFile(out, outEntries, outLen)
				if err != nil {
					return s.compactFailLocked(out, created, oldActID, err)
				}
				if err := out.Close(); err != nil {
					return s.compactFailLocked(nil, created, oldActID, err)
				}
				newBlooms[outID] = bloom
				if err := openOut(); err != nil {
					return s.compactFailLocked(nil, created, oldActID, err)
				}
			}
			if _, err := out.Write(rec); err != nil {
				return s.compactFailLocked(out, created, oldActID, fmt.Errorf("pagestore: compact write: %w", err))
			}
			newIndex[e.key] = location{seg: outID, offset: outLen}
			outEntries[e.key] = outLen
			outLen += int64(len(rec))
		}
		// data is released here: the next iteration re-binds it, and
		// nothing retains the previous segment's bytes.
	}
	if err := out.Sync(); err != nil {
		return s.compactFailLocked(out, created, oldActID, err)
	}
	// Swap in the new state, delete the old segments. Output ids start
	// past the old active id, so the two sets never overlap.
	s.active = out
	s.actID = outID
	s.actLen = outLen
	s.actEntries = outEntries
	s.index = newIndex
	s.blooms = newBlooms
	for _, id := range oldSegs {
		if err := os.Remove(s.segPath(id)); err != nil {
			return fmt.Errorf("pagestore: remove old segment: %w", err)
		}
	}
	return nil
}

// compactFailLocked unwinds a failed compaction: closes and removes any
// partial output segments, then reopens the previous active segment for
// append so the store keeps accepting Puts. The index is untouched (it
// still points at the old segments, which are never deleted on failure).
func (s *Store) compactFailLocked(out *os.File, created []int, oldActID int, err error) error {
	if out != nil {
		if cerr := out.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
	}
	for _, id := range created {
		if rerr := os.Remove(s.segPath(id)); rerr != nil {
			err = errors.Join(err, rerr)
		}
	}
	f, rerr := os.OpenFile(s.segPath(oldActID), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if rerr != nil {
		return errors.Join(err, fmt.Errorf("pagestore: reopen active after failed compact: %w", rerr))
	}
	s.active = f
	s.actID = oldActID
	return err
}
