package pagestore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	body := []byte("<html>hello page store</html>")
	meta := Meta{FetchedAt: 12.5, Status: 200}
	if err := s.Put("t1/http://a/", meta, body); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotBody, err := s.Get("t1/http://a/")
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
	if !bytes.Equal(gotBody, body) {
		t.Fatalf("body = %q", gotBody)
	}
	if !s.Has("t1/http://a/") || s.Has("missing") {
		t.Fatal("Has wrong")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestGetMissing(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if _, _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestLatestVersionWins(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if err := s.Put("k", Meta{Status: 200}, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", Meta{Status: 200}, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	_, body, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "v2" {
		t.Fatalf("body = %q, want v2", body)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", s.Len())
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), Meta{Status: 200, FetchedAt: float64(i)},
			[]byte(strings.Repeat("x", i*10))); err != nil {
			t.Fatal(err)
		}
	}
	s.Put("k00", Meta{Status: 200}, []byte("overwritten"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	if s2.Len() != 50 {
		t.Fatalf("Len after reopen = %d", s2.Len())
	}
	_, body, err := s2.Get("k00")
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "overwritten" {
		t.Fatalf("reopened latest version = %q", body)
	}
	_, body, err = s2.Get("k31")
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 310 {
		t.Fatalf("k31 body length %d", len(body))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxSegmentBytes: 2048})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		body := make([]byte, 500) // incompressible, to exercise rotation
		rng.Read(body)
		if err := s.Put(fmt.Sprintf("k%02d", i), Meta{}, body); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments after rotation-sized writes", len(segs))
	}
	// Every key still readable across segments.
	for i := 0; i < 40; i++ {
		if _, _, err := s.Get(fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatalf("k%02d: %v", i, err)
		}
	}
	// And after reopen.
	s.Close()
	s2 := open(t, dir, Options{MaxSegmentBytes: 2048})
	if s2.Len() != 40 {
		t.Fatalf("Len after reopen = %d", s2.Len())
	}
}

func TestCrashRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", Meta{Status: 200}, []byte("first"))
	s.Put("b", Meta{Status: 200}, []byte("second"))
	s.Close()

	// Simulate a torn write: chop bytes off the tail of the last segment.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("seg-%06d.dat", segs[len(segs)-1]))
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, Options{})
	// The torn record ("b") is gone; "a" survives.
	if !s2.Has("a") {
		t.Fatal("intact record lost")
	}
	if s2.Has("b") {
		t.Fatal("torn record resurrected")
	}
	// The store remains writable and the recovered tail is clean.
	if err := s2.Put("c", Meta{Status: 200}, []byte("third")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.Get("c"); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptMiddleRecordRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", Meta{}, []byte("aaaa"))
	s.Put("b", Meta{}, []byte("bbbb"))
	s.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("seg-%06d.dat", segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[5] ^= 0xff // corrupt inside the first record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt middle record accepted")
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxSegmentBytes: 4096})
	// Many overwrites: lots of dead records.
	for round := 0; round < 10; round++ {
		for i := 0; i < 10; i++ {
			key := fmt.Sprintf("k%d", i)
			if err := s.Put(key, Meta{FetchedAt: float64(round)}, bytes.Repeat([]byte("y"), 300)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sizeBefore := dirSize(t, dir)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	sizeAfter := dirSize(t, dir)
	if sizeAfter >= sizeBefore {
		t.Fatalf("compaction did not shrink: %d -> %d", sizeBefore, sizeAfter)
	}
	if s.Len() != 10 {
		t.Fatalf("Len after compact = %d", s.Len())
	}
	for i := 0; i < 10; i++ {
		meta, _, err := s.Get(fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if meta.FetchedAt != 9 {
			t.Fatalf("k%d version = %g, want latest (9)", i, meta.FetchedAt)
		}
	}
	// Still writable after compaction, and reopenable.
	if err := s.Put("new", Meta{}, []byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := open(t, dir, Options{})
	if s2.Len() != 11 {
		t.Fatalf("Len after compact+reopen = %d", s2.Len())
	}
}

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

func TestKeysAndPrefix(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	for _, k := range []string{"t2/b", "t1/a", "t1/b", "t2/a"} {
		if err := s.Put(k, Meta{}, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	want := []string{"t1/a", "t1/b", "t2/a", "t2/b"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v", keys)
		}
	}
	t1 := s.KeysWithPrefix("t1/")
	if len(t1) != 2 || t1[0] != "t1/a" || t1[1] != "t1/b" {
		t.Fatalf("prefix keys = %v", t1)
	}
}

func TestClosedStore(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.Put("k", Meta{}, nil); !errors.Is(err, ErrClosed) {
		t.Fatal("Put on closed store accepted")
	}
	if _, _, err := s.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatal("Get on closed store accepted")
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatal("Sync on closed store accepted")
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatal("Compact on closed store accepted")
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{MaxSegmentBytes: 10}); err == nil {
		t.Fatal("tiny segment size accepted")
	}
	s := open(t, t.TempDir(), Options{})
	if err := s.Put("", Meta{}, nil); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put(strings.Repeat("k", maxKeyLen+1), Meta{}, nil); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := open(t, t.TempDir(), Options{MaxSegmentBytes: 8192})
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if err := s.Put(key, Meta{Status: 200}, []byte(key+"-body")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", s.Len(), workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			key := fmt.Sprintf("w%d-k%d", w, i)
			_, body, err := s.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			if string(body) != key+"-body" {
				t.Fatalf("interleaved record damaged: %q", body)
			}
		}
	}
}

func TestEmptyBody(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if err := s.Put("k", Meta{Status: 404}, nil); err != nil {
		t.Fatal(err)
	}
	meta, body, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Status != 404 || len(body) != 0 {
		t.Fatalf("empty body round trip: %+v %q", meta, body)
	}
}

func BenchmarkPut(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	body := bytes.Repeat([]byte("the quick brown fox "), 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), Meta{Status: 200}, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	body := bytes.Repeat([]byte("page body "), 200)
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), Meta{}, body); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Get(fmt.Sprintf("k%d", i%100)); err != nil {
			b.Fatal(err)
		}
	}
}
