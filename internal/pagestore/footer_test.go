package pagestore

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"
)

// stripFooters rewrites every sealed segment in dir as a bare record
// stream (the pre-footer, legacy on-disk format) by truncating the file
// at the footer's dataLen.
func stripFooters(t testing.TB, dir string) {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range segs {
		path := fmt.Sprintf("%s/seg-%06d.dat", dir, id)
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			t.Fatal(err)
		}
		ft, _, err := readFooter(f, st.Size())
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if ft == nil {
			continue // unsealed
		}
		if err := os.Truncate(path, ft.dataLen); err != nil {
			t.Fatal(err)
		}
	}
}

// indexSnapshot captures a store's key index for equality comparison.
func indexSnapshot(t *testing.T, dir string, opts Options) map[string]location {
	t.Helper()
	s := open(t, dir, opts)
	got := make(map[string]location, len(s.index))
	s.mu.Lock()
	for k, loc := range s.index {
		got[k] = loc
	}
	s.mu.Unlock()
	return got
}

// TestOpenUsesFooters pins the O(index) cold-start contract: on a
// multi-segment store built through rotation, every sealed segment is
// indexed from its footer and only the unsealed active tail is scanned.
func TestOpenUsesFooters(t *testing.T) {
	dir, want := buildMultiSegmentFixture(t)
	s := open(t, dir, Options{MaxSegmentBytes: 2048})
	if s.openStats.footerSegments == 0 {
		t.Fatal("no segment was indexed from its footer")
	}
	if s.openStats.scannedSegments > 1 {
		t.Fatalf("%d segments scanned; only the active tail may be", s.openStats.scannedSegments)
	}
	for k, body := range want {
		_, got, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if string(got) != body {
			t.Fatalf("Get(%q) = %q, want %q", k, got, body)
		}
	}
	// Sealed segments are immutable: the reused store appends to the
	// unsealed tail or a fresh segment, never a sealed one.
	if err := s.Put("fresh", Meta{Status: 200}, []byte("post-open")); err != nil {
		t.Fatal(err)
	}
}

// TestOpenFooterFallback is the robustness table: every way a footer can
// be damaged must fall back to the record scan and produce an index
// identical to the footer path's (which equals the legacy full-scan
// index by TestOpenMatchesLegacyScan).
func TestOpenFooterFallback(t *testing.T) {
	cases := []struct {
		name string
		// damage mutates one sealed segment file given its bytes and
		// parsed footer; returns the new file contents.
		damage func(data []byte, ft *footer) []byte
	}{
		{"trailer magic zapped", func(data []byte, ft *footer) []byte {
			data[len(data)-1] ^= 0xff
			return data
		}},
		{"footer crc zapped", func(data []byte, ft *footer) []byte {
			data[len(data)-footTrailerLen] ^= 0xff
			return data
		}},
		{"footer truncated mid-body", func(data []byte, ft *footer) []byte {
			cut := ft.dataLen + (int64(len(data))-ft.dataLen)/2
			return data[:cut]
		}},
		{"foot magic byte zapped", func(data []byte, ft *footer) []byte {
			data[ft.dataLen] ^= 0xff
			return data
		}},
		{"footer removed entirely", func(data []byte, ft *footer) []byte {
			return data[:ft.dataLen]
		}},
		{"bloom bits zapped", func(data []byte, ft *footer) []byte {
			data[ft.dataLen+8] ^= 0xff // inside the footer body
			return data
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, want := buildMultiSegmentFixture(t)
			clean := indexSnapshot(t, dir, Options{MaxSegmentBytes: 2048})

			// Damage the first sealed segment.
			segs, err := listSegments(dir)
			if err != nil {
				t.Fatal(err)
			}
			path := fmt.Sprintf("%s/seg-%06d.dat", dir, segs[0])
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			st, err := f.Stat()
			if err != nil {
				t.Fatal(err)
			}
			ft, _, err := readFooter(f, st.Size())
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			if ft == nil {
				t.Fatal("first segment is not sealed; fixture too small")
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.damage(data, ft), 0o644); err != nil {
				t.Fatal(err)
			}

			s := open(t, dir, Options{MaxSegmentBytes: 2048})
			if s.openStats.scannedSegments < 2 { // damaged segment + active tail
				t.Fatalf("damaged segment was not scan-indexed (scanned=%d)", s.openStats.scannedSegments)
			}
			s.mu.Lock()
			got := make(map[string]location, len(s.index))
			for k, loc := range s.index {
				got[k] = loc
			}
			s.mu.Unlock()
			if !reflect.DeepEqual(got, clean) {
				t.Fatalf("fallback index differs from footer index:\ngot  %v\nwant %v", got, clean)
			}
			for k, body := range want {
				_, g, err := s.Get(k)
				if err != nil {
					t.Fatalf("Get(%q): %v", k, err)
				}
				if string(g) != body {
					t.Fatalf("Get(%q) = %q, want %q", k, g, body)
				}
			}
		})
	}
}

// TestOpenMatchesLegacyScan: a store with all footers stripped (the
// pre-footer on-disk format) opens to the same index and contents.
func TestOpenMatchesLegacyScan(t *testing.T) {
	dir, want := buildMultiSegmentFixture(t)
	footered := indexSnapshot(t, dir, Options{MaxSegmentBytes: 2048})
	stripFooters(t, dir)
	s := open(t, dir, Options{MaxSegmentBytes: 2048})
	if s.openStats.footerSegments != 0 {
		t.Fatal("stripped store still claims footer segments")
	}
	s.mu.Lock()
	got := make(map[string]location, len(s.index))
	for k, loc := range s.index {
		got[k] = loc
	}
	s.mu.Unlock()
	if !reflect.DeepEqual(got, footered) {
		t.Fatal("legacy scan index differs from footer index")
	}
	for k, body := range want {
		_, g, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if string(g) != body {
			t.Fatalf("Get(%q) mismatch", k)
		}
	}
}

// TestInterruptedSealRecovered: a crash mid-seal leaves a partial footer
// on the newest segment; Open must truncate the debris and keep the
// segment appendable.
func TestInterruptedSealRecovered(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", Meta{Status: 200}, []byte("body-a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-write a partial footer: magic plus half the body, no trailer.
	path := fmt.Sprintf("%s/seg-%06d.dat", dir, 1)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	dataLen := st.Size()
	foot, _ := encodeFooter(map[string]int64{"a": 0}, dataLen)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(foot[:len(foot)/2]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, Options{})
	if !s2.Has("a") {
		t.Fatal("record lost to footer debris")
	}
	if err := s2.Put("b", Meta{Status: 200}, []byte("body-b")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := open(t, dir, Options{})
	for _, k := range []string{"a", "b"} {
		if _, _, err := s3.Get(k); err != nil {
			t.Fatalf("Get(%q) after recovery: %v", k, err)
		}
	}
}

// TestBloomNoFalseNegatives: every sealed key answers true; unknown keys
// mostly answer false (the filter is sized for ~1% false positives).
func TestBloomNoFalseNegatives(t *testing.T) {
	dir, want := buildMultiSegmentFixture(t)
	s := open(t, dir, Options{MaxSegmentBytes: 2048})
	s.mu.Lock()
	locs := make(map[string]location, len(s.index))
	for k, loc := range s.index {
		locs[k] = loc
	}
	nSealed := len(s.blooms)
	s.mu.Unlock()
	if nSealed == 0 {
		t.Fatal("no sealed segments")
	}
	for k := range want {
		if !s.MayContain(locs[k].seg, k) {
			t.Fatalf("false negative: %q in segment %d", k, locs[k].seg)
		}
	}
	// False-positive rate across sealed segments.
	segs := s.SegmentIDs()
	probes, hits := 0, 0
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("absent-key-%06d", i)
		for _, seg := range segs {
			s.mu.Lock()
			_, sealed := s.blooms[seg]
			s.mu.Unlock()
			if !sealed {
				continue
			}
			probes++
			if s.MayContain(seg, k) {
				hits++
			}
		}
	}
	if probes == 0 {
		t.Fatal("no sealed segments probed")
	}
	if rate := float64(hits) / float64(probes); rate > 0.05 {
		t.Fatalf("bloom false-positive rate %.3f; want <= 0.05", rate)
	}
	// Unsealed segments conservatively answer true.
	if !s.MayContain(99999, "anything") {
		t.Fatal("unknown segment must answer true")
	}
}

// TestCompactRotatesAndSeals: compaction output respects the segment
// size threshold and seals every filled segment, so a post-compact Open
// is footer-indexed except for the active tail.
func TestCompactRotatesAndSeals(t *testing.T) {
	dir, want := buildMultiSegmentFixture(t)
	s := open(t, dir, Options{MaxSegmentBytes: 2048})
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("compact produced %d segments; want rotation at 2048 bytes", len(segs))
	}
	for k, body := range want {
		_, g, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get(%q) after compact: %v", k, err)
		}
		if string(g) != body {
			t.Fatalf("Get(%q) after compact mismatch", k)
		}
	}
	if err := s.Put("post-compact", Meta{Status: 200}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := open(t, dir, Options{MaxSegmentBytes: 2048})
	if s2.openStats.footerSegments < len(segs)-1 {
		t.Fatalf("only %d of %d compacted segments footer-indexed", s2.openStats.footerSegments, len(segs))
	}
	if s2.Len() != len(want)+1 {
		t.Fatalf("Len after compact+reopen = %d", s2.Len())
	}
}

// TestCompactFailureKeepsStoreUsable: when compaction cannot read a
// source segment, the store must clean up its partial output, restore
// the previous active segment and keep serving Puts and Gets.
func TestCompactFailureKeepsStoreUsable(t *testing.T) {
	dir, want := buildMultiSegmentFixture(t)
	s := open(t, dir, Options{MaxSegmentBytes: 2048})
	segsBefore, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: make the first live-bearing segment unreadable by
	// replacing it with a directory... os.Remove then mkdir keeps the
	// path occupied so ReadFile fails deterministically.
	victim := s.SegmentIDs()[0]
	vpath := fmt.Sprintf("%s/seg-%06d.dat", dir, victim)
	vdata, err := os.ReadFile(vpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(vpath); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(vpath, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err == nil {
		t.Fatal("compact of unreadable segment succeeded")
	}
	// Restore the bytes and verify the store never lost its state.
	if err := os.Remove(vpath); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(vpath, vdata, 0o644); err != nil {
		t.Fatal(err)
	}
	segsAfter, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(segsAfter, segsBefore) {
		t.Fatalf("failed compact changed the segment set: %v -> %v", segsBefore, segsAfter)
	}
	// The store stays writable (the old active segment was reopened)...
	if err := s.Put("after-failed-compact", Meta{Status: 200}, []byte("alive")); err != nil {
		t.Fatalf("Put after failed compact: %v", err)
	}
	// ...readable...
	for k, body := range want {
		_, g, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get(%q) after failed compact: %v", k, err)
		}
		if string(g) != body {
			t.Fatalf("Get(%q) after failed compact mismatch", k)
		}
	}
	// ...and a retried compact succeeds.
	if err := s.Compact(); err != nil {
		t.Fatalf("retried compact: %v", err)
	}
	if _, _, err := s.Get("after-failed-compact"); err != nil {
		t.Fatal(err)
	}
}

// TestOpenAfterCompactAfterCrash emulates a crash mid-compaction: old
// segments plus a partial, torn compacted output on disk. Open must
// recover to exactly the live state.
func TestOpenAfterCompactAfterCrash(t *testing.T) {
	dir, want := buildMultiSegmentFixture(t)
	// Emulate the partial output a crashed Compact leaves behind: a new
	// highest-id segment holding copies of some live records, ending in
	// a torn record.
	s := open(t, dir, Options{MaxSegmentBytes: 2048})
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for _, id := range s.SegmentIDs() {
		rs, err := s.ReadLive(id)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rs...)
		if len(recs) >= 5 {
			break
		}
	}
	s.Close()
	partialID := segs[len(segs)-1] + 1
	var buf []byte
	for _, r := range recs[:3] {
		buf = appendRecord(buf, r.Key, r.Meta, compressBody(t, r.Body))
	}
	torn := appendRecord(nil, "torn-key", Meta{Status: 200}, compressBody(t, []byte("torn")))
	buf = append(buf, torn[:len(torn)-5]...)
	ppath := fmt.Sprintf("%s/seg-%06d.dat", dir, partialID)
	if err := os.WriteFile(ppath, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, Options{MaxSegmentBytes: 2048})
	if s2.Has("torn-key") {
		t.Fatal("torn compact record resurrected")
	}
	if s2.Len() != len(want) {
		t.Fatalf("Len after crash recovery = %d, want %d", s2.Len(), len(want))
	}
	for k, body := range want {
		_, g, err := s2.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if string(g) != body {
			t.Fatalf("Get(%q) after crash mismatch", k)
		}
	}
	// Round-trip: compact the recovered store and reopen once more.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := open(t, dir, Options{MaxSegmentBytes: 2048})
	if s3.Len() != len(want) {
		t.Fatalf("Len after compact round-trip = %d", s3.Len())
	}
}

func compressBody(t *testing.T, body []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(body); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadLivePartition: SegmentIDs + ReadLive partition the live set —
// every live key exactly once, bodies matching Get, in offset order.
func TestReadLivePartition(t *testing.T) {
	dir, want := buildMultiSegmentFixture(t)
	s := open(t, dir, Options{MaxSegmentBytes: 2048})
	seen := make(map[string]string)
	for _, id := range s.SegmentIDs() {
		recs, err := s.ReadLive(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if _, dup := seen[r.Key]; dup {
				t.Fatalf("key %q streamed twice", r.Key)
			}
			seen[r.Key] = string(r.Body)
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("streamed %d keys, want %d", len(seen), len(want))
	}
	for k, body := range want {
		if seen[k] != body {
			t.Fatalf("ReadLive body for %q differs from latest version", k)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadLive(1); !errors.Is(err, ErrClosed) {
		t.Fatal("ReadLive on closed store accepted")
	}
}

// TestFooterDecodeRejectsGarbage fuzzes the decoder lightly: random and
// structurally-damaged bodies must never decode successfully.
func TestFooterDecodeRejectsGarbage(t *testing.T) {
	foot, _ := encodeFooter(map[string]int64{"a": 0, "b": 100}, 200)
	body := foot[1 : len(foot)-footTrailerLen]
	if _, ok := decodeFooterBody(append([]byte(nil), body...), 200); !ok {
		t.Fatal("control: pristine body must decode")
	}
	if _, ok := decodeFooterBody(append([]byte(nil), body...), 199); ok {
		t.Fatal("dataLen mismatch accepted")
	}
	for i := range body {
		mut := append([]byte(nil), body...)
		mut[i] ^= 0x5a
		ft, ok := decodeFooterBody(mut, 200)
		// A bit flip may legally survive inside the bloom bits; anything
		// touching structure must fail or keep entries well-formed.
		if ok {
			if len(ft.entries) > 2 {
				t.Fatalf("byte %d: mutated body decoded to %d entries", i, len(ft.entries))
			}
			for _, e := range ft.entries {
				if e.off >= 200 {
					t.Fatalf("byte %d: entry offset %d out of range", i, e.off)
				}
			}
		}
	}
}
