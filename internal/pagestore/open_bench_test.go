package pagestore

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildBenchStore writes a corpus that rotates through many segments:
// nSegs-ish segments of ~segBytes each, with one round of overwrites so
// compaction has dead records to drop. Bodies are incompressible so the
// on-disk size tracks the write volume.
func buildBenchStore(b *testing.B, dir string, segBytes int64, nKeys, rounds int) {
	b.Helper()
	s, err := Open(dir, Options{MaxSegmentBytes: segBytes})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	body := make([]byte, 4096)
	for r := 0; r < rounds; r++ {
		for i := 0; i < nKeys; i++ {
			rng.Read(body)
			key := fmt.Sprintf("t%d/site-%04d/page", r%2+1, i)
			if err := s.Put(key, Meta{FetchedAt: float64(r), Status: 200}, body); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		b.Fatal(err)
	}
	if len(segs) < 8 {
		b.Fatalf("bench store built only %d segments; want >= 8", len(segs))
	}
}

// BenchmarkOpen measures the cold-start index rebuild on a multi-segment
// corpus — the tax qualityserve pays on every restart. The footered
// sub-benchmark indexes sealed segments from their footers (two small
// reads each); fullscan strips the footers first, forcing the legacy
// whole-file replay the seed store always paid.
func BenchmarkOpen(b *testing.B) {
	run := func(b *testing.B, strip bool) {
		dir := b.TempDir()
		buildBenchStore(b, dir, 1<<20, 512, 5)
		if strip {
			stripFooters(b, dir)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := Open(dir, Options{ScanWorkers: 1})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("footered", func(b *testing.B) { run(b, false) })
	b.Run("fullscan", func(b *testing.B) { run(b, true) })
}

// BenchmarkCompact measures one full compaction of the bench corpus.
// B/op is the interesting number: it bounds the peak working set the
// copy loop holds while rewriting live records.
func BenchmarkCompact(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		buildBenchStore(b, dir, 1<<20, 512, 5)
		s, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.Compact(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
