// Package quality implements the paper's primary contribution: the
// snapshot-based page-quality estimator of Sections 5 and 8,
//
//	Q(p) ≈ C · ΔPR(p)/PR(p) + PR(p)
//
// applied to a series of Web snapshots, with the paper's exact
// experimental policies: the ±5 % change filter, ΔPR measured between the
// first and last estimation snapshots and divided by the first, and the
// fluctuating-PageRank fallback I(p,t) := 0 (§9.1), under which the
// estimate degenerates to the current PageRank.
package quality

import (
	"errors"
	"fmt"
	"math"

	"pagequality/internal/pagerank"
	"pagequality/internal/snapshot"
)

// Class describes how a page's popularity evolved over the estimation
// snapshots.
type Class uint8

const (
	// ClassStable: the popularity changed by at most MinChangeFrac between
	// the first and last estimation snapshots. The estimator equals the
	// current popularity. A page whose popularity is zero in every
	// snapshot is stable.
	ClassStable Class = iota
	// ClassIncreasing: strictly increasing across every consecutive pair
	// of snapshots (the paper's PR(t1) < PR(t2) < PR(t3) pages). Pages
	// born during the estimation window — popularity 0 at t1 and positive
	// at the last snapshot, the paper's motivating rising stars — are also
	// ClassIncreasing provided the series never decreases; their trend is
	// measured from the first positive snapshot (the relative increase
	// over a zero baseline is undefined).
	ClassIncreasing
	// ClassDecreasing: strictly decreasing across every pair — the §9.1
	// pages the base model cannot produce but forgetting can.
	ClassDecreasing
	// ClassFluctuating: went up and down (including pages that were born
	// and died back to zero within the window); the paper sets I(p,t) = 0
	// for these, so the estimate is the current popularity.
	ClassFluctuating
)

func (c Class) String() string {
	switch c {
	case ClassStable:
		return "stable"
	case ClassIncreasing:
		return "increasing"
	case ClassDecreasing:
		return "decreasing"
	case ClassFluctuating:
		return "fluctuating"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Config tunes the estimator.
type Config struct {
	// C is the constant of Equation 1 weighting the relative popularity
	// increase against the current popularity. The paper used 0.1 and
	// found the result insensitive to small variations (§8.2, footnote 6).
	// C = 0 is valid and means the estimator degenerates to the current
	// popularity (the pure-popularity baseline, the C → 0 endpoint of the
	// ablation sweep); defaults are routed only through DefaultConfig,
	// never applied implicitly.
	C float64
	// MinChangeFrac is the relative-change threshold below which a page is
	// classified stable. The paper reports results only for pages whose
	// PageRank changed by more than 5 %.
	MinChangeFrac float64
	// ApplyTrendToDecreasing selects whether the ΔPR term is applied to
	// consistently decreasing pages too (the paper's §8.2 formula covers
	// pages that "consistently increased (or decreased)"). When false,
	// decreasing pages fall back to the current popularity like
	// fluctuating ones.
	ApplyTrendToDecreasing bool
	// MaxTrend, when positive, caps |ΔPR|/PR(t1) at this value before the
	// C-weighting. This is the noise-robustness measure §9.1 sketches for
	// low-popularity pages: a page observed mid-exponential growth has a
	// finite-difference slope far above its instantaneous derivative, and
	// a raw ΔPR/PR of 10× says "growing fast", not "quality is 10". Zero
	// disables the cap (the paper's original formula).
	MaxTrend float64
}

// DefaultConfig returns the paper's experimental settings (C = 0.1,
// 5 % change filter, trend applied to decreasing pages too).
func DefaultConfig() Config {
	return Config{C: 0.1, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true}
}

// ErrBadInput reports invalid estimator input.
var ErrBadInput = errors.New("quality: bad input")

// fill validates the configuration. It deliberately applies no defaults:
// a caller's explicit C = 0 (the pure-popularity baseline) must survive
// untouched — use DefaultConfig for the paper's settings.
func (c *Config) fill() error {
	if c.C < 0 {
		return fmt.Errorf("%w: C=%g", ErrBadInput, c.C)
	}
	if c.MinChangeFrac < 0 {
		return fmt.Errorf("%w: MinChangeFrac=%g", ErrBadInput, c.MinChangeFrac)
	}
	if c.MaxTrend < 0 {
		return fmt.Errorf("%w: MaxTrend=%g", ErrBadInput, c.MaxTrend)
	}
	return nil
}

// Result is the estimator output.
type Result struct {
	// Q[i] is the estimated quality of page i.
	Q []float64
	// Class[i] is the popularity-evolution class of page i.
	Class []Class
	// Changed[i] reports whether page i's popularity changed by more than
	// MinChangeFrac between the first and last estimation snapshots — the
	// paper's evaluation restricts itself to these pages.
	Changed []bool
	// NumChanged counts true entries of Changed.
	NumChanged int
	// Counts tallies pages per class.
	Counts map[Class]int
}

// EstimateFromSeries applies the estimator to a popularity series:
// ranks[k][i] is the popularity (PageRank, in-degree, traffic, …) of page
// i at snapshot k. At least two snapshots are required; the paper used
// three (t1..t3). All snapshots participate in trend classification; the
// ΔPR term uses the first and last. Pages born during the window
// (popularity 0 at the first snapshot, positive at the last) count as
// changed and, when their series never decreases, as increasing, with the
// trend measured from the first positive snapshot — see the Class
// constants for the exact policy.
func EstimateFromSeries(ranks [][]float64, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(ranks) < 2 {
		return nil, fmt.Errorf("%w: need >= 2 snapshots, got %d", ErrBadInput, len(ranks))
	}
	n := len(ranks[0])
	for k, r := range ranks {
		if len(r) != n {
			return nil, fmt.Errorf("%w: snapshot %d has %d pages, want %d", ErrBadInput, k, len(r), n)
		}
	}
	res := &Result{
		Q:       make([]float64, n),
		Class:   make([]Class, n),
		Changed: make([]bool, n),
		Counts:  make(map[Class]int),
	}
	last := len(ranks) - 1
	for i := 0; i < n; i++ {
		first := ranks[0][i]
		cur := ranks[last][i]
		cls := classify(ranks, i, cfg.MinChangeFrac)
		res.Class[i] = cls
		res.Counts[cls]++
		if first > 0 {
			res.Changed[i] = math.Abs(cur-first)/first > cfg.MinChangeFrac
		} else {
			// Born during the window: 0 → positive is always a change (the
			// relative change over a zero baseline is unbounded), so rising
			// stars stay in the evaluation set.
			res.Changed[i] = cur > 0
		}
		if res.Changed[i] {
			res.NumChanged++
		}
		switch {
		case cls == ClassIncreasing,
			cls == ClassDecreasing && cfg.ApplyTrendToDecreasing:
			// Q(p) = C · (PR(t3) - PR(t1))/PR(t1) + PR(t3)
			base := first
			if base == 0 {
				// Born page (increasing from a zero baseline): measure the
				// relative increase from its first positive snapshot. If
				// only the last snapshot is positive the trend is zero and
				// Q degenerates to the current popularity.
				for k := 1; k <= last; k++ {
					if ranks[k][i] > 0 {
						base = ranks[k][i]
						break
					}
				}
			}
			trend := (cur - base) / base
			if cfg.MaxTrend > 0 {
				trend = math.Max(-cfg.MaxTrend, math.Min(cfg.MaxTrend, trend))
			}
			res.Q[i] = cfg.C*trend + cur
			if res.Q[i] < 0 {
				res.Q[i] = 0 // a quality estimate cannot be negative
			}
		default:
			// Stable and fluctuating pages: I := 0, Q = current popularity.
			res.Q[i] = cur
		}
	}
	return res, nil
}

// classify determines the evolution class of page i.
func classify(ranks [][]float64, i int, minChange float64) Class {
	first := ranks[0][i]
	last := ranks[len(ranks)-1][i]
	if first <= 0 {
		// No popularity baseline at t1. A page that ends at zero either
		// never moved (stable) or rose and fell back (fluctuating). A page
		// born during the window — the paper's rising stars — is
		// increasing when its series never decreases, fluctuating
		// otherwise.
		if last <= 0 {
			for k := 1; k < len(ranks); k++ {
				if ranks[k][i] > 0 {
					return ClassFluctuating
				}
			}
			return ClassStable
		}
		for k := 1; k < len(ranks); k++ {
			if ranks[k][i] < ranks[k-1][i] {
				return ClassFluctuating
			}
		}
		return ClassIncreasing
	}
	if math.Abs(last-first)/first <= minChange {
		return ClassStable
	}
	inc, dec := true, true
	for k := 1; k < len(ranks); k++ {
		if ranks[k][i] <= ranks[k-1][i] {
			inc = false
		}
		if ranks[k][i] >= ranks[k-1][i] {
			dec = false
		}
	}
	switch {
	case inc:
		return ClassIncreasing
	case dec:
		return ClassDecreasing
	default:
		return ClassFluctuating
	}
}

// FromAligned runs the full Section-8 pipeline on an aligned snapshot
// series: computes PageRank for the first estimationSnaps snapshots with
// the given options, then applies the estimator. The remaining snapshots
// (if any) are left to the caller as the "future" reference — the paper
// estimated from t1..t3 and evaluated against t4.
func FromAligned(al *snapshot.Aligned, estimationSnaps int, prOpts pagerank.Options, cfg Config) (*Result, [][]float64, error) {
	if estimationSnaps < 2 || estimationSnaps > al.NumSnapshots() {
		return nil, nil, fmt.Errorf("%w: estimationSnaps=%d with %d snapshots",
			ErrBadInput, estimationSnaps, al.NumSnapshots())
	}
	ranks, err := al.PageRankSeries(prOpts)
	if err != nil {
		return nil, nil, err
	}
	res, err := EstimateFromSeries(ranks[:estimationSnaps], cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, ranks, nil
}

// FromAlignedIncremental is FromAligned with the PageRank series chained
// through pagerank.ComputeIncremental: each snapshot's solve re-seeds
// from the previous snapshot's fixed point (see
// Aligned.PageRankSeriesIncremental). The estimate agrees with
// FromAligned's within the PageRank convergence tolerance. This is the
// variant the serving refresh path uses, where the previous generation's
// vectors are already in memory and rebuild latency is what matters.
func FromAlignedIncremental(al *snapshot.Aligned, estimationSnaps int, prOpts pagerank.IncrementalOptions, cfg Config) (*Result, [][]float64, error) {
	if estimationSnaps < 2 || estimationSnaps > al.NumSnapshots() {
		return nil, nil, fmt.Errorf("%w: estimationSnaps=%d with %d snapshots",
			ErrBadInput, estimationSnaps, al.NumSnapshots())
	}
	ranks, err := al.PageRankSeriesIncremental(prOpts)
	if err != nil {
		return nil, nil, err
	}
	res, err := EstimateFromSeries(ranks[:estimationSnaps], cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, ranks, nil
}
