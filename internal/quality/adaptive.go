package quality

import (
	"fmt"
	"math"
	"sort"
)

// EstimateWithAdaptiveWindow implements the §9.1 proposal directly:
// "adjusting the Web download intervals depending on the current PageRank
// values. For example, for low-PageRank pages, we may want to compute the
// PageRank increase over a longer period than high-PageRank pages in
// order to reduce the impact of noise."
//
// Pages at or below the splitQuantile of current popularity measure their
// trend over the full window (first → last snapshot); pages above it use
// only the most recent gap (second-to-last → last), which is less stale.
// Both trends are normalised to the full window length so one constant C
// applies to every page:
//
//	trend = [(PR(t_k) - PR(t_j)) / PR(t_j)] · (t_k - t_1)/(t_k - t_j)
//
// Classification, the stable filter and the fluctuation fallback follow
// EstimateFromSeries.
func EstimateWithAdaptiveWindow(ranks [][]float64, times []float64, cfg Config, splitQuantile float64) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(ranks) < 3 {
		return nil, fmt.Errorf("%w: adaptive windows need >= 3 snapshots, got %d", ErrBadInput, len(ranks))
	}
	if len(times) != len(ranks) {
		return nil, fmt.Errorf("%w: %d times for %d snapshots", ErrBadInput, len(times), len(ranks))
	}
	for k := 1; k < len(times); k++ {
		if times[k] <= times[k-1] {
			return nil, fmt.Errorf("%w: times not strictly increasing at %d", ErrBadInput, k)
		}
	}
	if splitQuantile <= 0 || splitQuantile >= 1 {
		return nil, fmt.Errorf("%w: splitQuantile=%g outside (0,1)", ErrBadInput, splitQuantile)
	}
	n := len(ranks[0])
	for k, r := range ranks {
		if len(r) != n {
			return nil, fmt.Errorf("%w: snapshot %d has %d pages, want %d", ErrBadInput, k, len(r), n)
		}
	}
	last := len(ranks) - 1
	cur := ranks[last]

	// Popularity threshold at the split quantile.
	sorted := append([]float64(nil), cur...)
	sort.Float64s(sorted)
	threshold := sorted[int(splitQuantile*float64(n-1))]

	res := &Result{
		Q:       make([]float64, n),
		Class:   make([]Class, n),
		Changed: make([]bool, n),
		Counts:  make(map[Class]int),
	}
	fullWindow := times[last] - times[0]
	shortWindow := times[last] - times[last-1]
	for i := 0; i < n; i++ {
		first := ranks[0][i]
		cls := classify(ranks, i, cfg.MinChangeFrac)
		res.Class[i] = cls
		res.Counts[cls]++
		if first > 0 {
			res.Changed[i] = math.Abs(cur[i]-first)/first > cfg.MinChangeFrac
		}
		if res.Changed[i] {
			res.NumChanged++
		}
		applyTrend := cls == ClassIncreasing ||
			(cls == ClassDecreasing && cfg.ApplyTrendToDecreasing)
		if !applyTrend {
			res.Q[i] = cur[i]
			continue
		}
		// Window choice per §9.1.
		base := first
		scale := 1.0
		if cur[i] > threshold {
			base = ranks[last-1][i]
			scale = fullWindow / shortWindow
		}
		if base <= 0 {
			res.Q[i] = cur[i]
			continue
		}
		trend := (cur[i] - base) / base * scale
		if cfg.MaxTrend > 0 {
			trend = math.Max(-cfg.MaxTrend, math.Min(cfg.MaxTrend, trend))
		}
		res.Q[i] = cfg.C*trend + cur[i]
		if res.Q[i] < 0 {
			res.Q[i] = 0
		}
	}
	return res, nil
}
