package quality

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestAdaptiveWindowValidation(t *testing.T) {
	cfg := DefaultConfig()
	r3 := [][]float64{{1}, {2}, {3}}
	times := []float64{0, 4, 8}
	if _, err := EstimateWithAdaptiveWindow(r3[:2], times[:2], cfg, 0.5); !errors.Is(err, ErrBadInput) {
		t.Fatal("two snapshots accepted")
	}
	if _, err := EstimateWithAdaptiveWindow(r3, times[:2], cfg, 0.5); !errors.Is(err, ErrBadInput) {
		t.Fatal("times mismatch accepted")
	}
	if _, err := EstimateWithAdaptiveWindow(r3, []float64{0, 4, 4}, cfg, 0.5); !errors.Is(err, ErrBadInput) {
		t.Fatal("non-increasing times accepted")
	}
	if _, err := EstimateWithAdaptiveWindow(r3, times, cfg, 0); !errors.Is(err, ErrBadInput) {
		t.Fatal("quantile 0 accepted")
	}
	if _, err := EstimateWithAdaptiveWindow(r3, times, cfg, 1); !errors.Is(err, ErrBadInput) {
		t.Fatal("quantile 1 accepted")
	}
	if _, err := EstimateWithAdaptiveWindow([][]float64{{1}, {2, 3}, {4}}, times, cfg, 0.5); !errors.Is(err, ErrBadInput) {
		t.Fatal("ragged snapshots accepted")
	}
}

func TestAdaptiveWindowChoosesWindows(t *testing.T) {
	// Two pages: a low-PR page and a high-PR page, both rising linearly.
	// The low-PR page's trend must use the full window (t0 -> t2); the
	// high-PR page's the latest gap, scaled to the full window.
	ranks := [][]float64{
		{0.10, 10.0},
		{0.15, 12.0},
		{0.20, 16.0},
	}
	times := []float64{0, 4, 8}
	cfg := Config{C: 1, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true}
	res, err := EstimateWithAdaptiveWindow(ranks, times, cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Low page (index 0, below the median threshold): full-window trend
	// (0.20-0.10)/0.10 = 1.0 -> Q = 1*1.0 + 0.20.
	if math.Abs(res.Q[0]-1.20) > 1e-12 {
		t.Fatalf("low-PR page Q = %g, want 1.20", res.Q[0])
	}
	// High page: short-window trend (16-12)/12 scaled by 8/4 = 2:
	// trend = 0.6667 -> Q = 0.6667 + 16.
	if math.Abs(res.Q[1]-(16+2.0/3)) > 1e-9 {
		t.Fatalf("high-PR page Q = %g, want %g", res.Q[1], 16+2.0/3)
	}
}

func TestAdaptiveWindowFallbacks(t *testing.T) {
	cfg := DefaultConfig()
	times := []float64{0, 4, 8}
	// Stable and fluctuating pages: current value.
	ranks := [][]float64{
		{1.00, 1.0},
		{1.01, 1.5},
		{1.00, 1.2},
	}
	res, err := EstimateWithAdaptiveWindow(ranks, times, cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Q[0] != 1.00 || res.Q[1] != 1.2 {
		t.Fatalf("fallbacks wrong: %v", res.Q)
	}
	if res.Class[0] != ClassStable || res.Class[1] != ClassFluctuating {
		t.Fatalf("classes wrong: %v", res.Class)
	}
}

// On a corpus where low-PR pages are noisy, adaptive windows must track
// the plain endpoint estimator closely overall while cutting the low-PR
// error (the §9.1 motivation) — here checked on a synthetic series with
// heteroscedastic noise.
func TestAdaptiveWindowHelpsNoisyLowPR(t *testing.T) {
	// Low-PR pages: strong relative noise per crawl. High-PR pages: clean
	// but with recent trend changes (staleness hurts the full window).
	times := []float64{0, 2, 4, 6, 8}
	const pages = 1000
	ranks := make([][]float64, len(times))
	for k := range ranks {
		ranks[k] = make([]float64, pages)
	}
	future := make([]float64, pages)
	rng := newTestRand(12)
	for i := 0; i < pages; i++ {
		if i%2 == 0 { // low-PR, steady trend, noisy observations
			base, slope := 0.2, 0.01
			for k, tt := range times {
				v := base + slope*tt + 0.03*rng.NormFloat64()
				if v < 0.02 {
					v = 0.02
				}
				ranks[k][i] = v
			}
			future[i] = base + slope*26
		} else { // high-PR, clean, slope jumps midway (stale full window)
			v := 5.0
			for k, tt := range times {
				if k > 0 {
					slope := 0.025
					if tt > 4 {
						slope = 0.15
					}
					v += slope * (tt - times[k-1])
				}
				ranks[k][i] = v
			}
			future[i] = v + 0.15*18
		}
	}
	cfg := Config{C: 2.25, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true, MaxTrend: 1}
	fixed, err := EstimateFromSeries(ranks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := EstimateWithAdaptiveWindow(ranks, times, cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var errFixedHigh, errAdaptHigh float64
	nHigh := 0
	for i := 1; i < pages; i += 2 {
		if !fixed.Changed[i] {
			continue
		}
		errFixedHigh += math.Abs(fixed.Q[i]-future[i]) / future[i]
		errAdaptHigh += math.Abs(adaptive.Q[i]-future[i]) / future[i]
		nHigh++
	}
	if nHigh == 0 {
		t.Fatal("no changed high-PR pages")
	}
	// The short recent window reacts to the slope change: adaptive must
	// beat the stale full-window endpoint on the high-PR half.
	if errAdaptHigh >= errFixedHigh {
		t.Fatalf("adaptive %.4f not below fixed %.4f on trend-shift pages",
			errAdaptHigh/float64(nHigh), errFixedHigh/float64(nHigh))
	}
}

// newTestRand keeps math/rand out of the other test files' imports.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
