package quality

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestRegressionValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := EstimateWithRegression([][]float64{{1}, {1}}, []float64{0, 1}, cfg); !errors.Is(err, ErrBadInput) {
		t.Fatal("two snapshots accepted")
	}
	r3 := [][]float64{{1}, {2}, {3}}
	if _, err := EstimateWithRegression(r3, []float64{0, 1}, cfg); !errors.Is(err, ErrBadInput) {
		t.Fatal("times length mismatch accepted")
	}
	if _, err := EstimateWithRegression(r3, []float64{0, 1, 1}, cfg); !errors.Is(err, ErrBadInput) {
		t.Fatal("non-increasing times accepted")
	}
	if _, err := EstimateWithRegression([][]float64{{1}, {1, 2}, {1}}, []float64{0, 1, 2}, cfg); !errors.Is(err, ErrBadInput) {
		t.Fatal("ragged snapshots accepted")
	}
}

func TestRegressionMatchesEndpointOnPerfectLine(t *testing.T) {
	// A perfectly linear series: regression and endpoint estimators agree.
	times := []float64{0, 4, 8}
	ranks := [][]float64{{1.0}, {1.2}, {1.4}}
	cfg := Config{C: 0.5, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true}
	reg, err := EstimateWithRegression(ranks, times, cfg)
	if err != nil {
		t.Fatal(err)
	}
	end, err := EstimateFromSeries(ranks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reg.Q[0]-end.Q[0]) > 1e-12 {
		t.Fatalf("regression %g != endpoint %g on a perfect line", reg.Q[0], end.Q[0])
	}
}

func TestRegressionSmoothsFluctuation(t *testing.T) {
	// A page trending upward with one noisy dip: the endpoint estimator
	// classifies it fluctuating (I := 0) and loses the trend; regression
	// recovers it.
	times := []float64{0, 2, 4, 6}
	ranks := [][]float64{{1.0}, {1.25}, {1.15}, {1.5}}
	cfg := Config{C: 1.0, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true}
	end, err := EstimateFromSeries(ranks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if end.Class[0] != ClassFluctuating {
		t.Fatalf("fixture broken: class %v", end.Class[0])
	}
	if end.Q[0] != 1.5 {
		t.Fatalf("endpoint fallback = %g, want current 1.5", end.Q[0])
	}
	reg, err := EstimateWithRegression(ranks, times, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Q[0] <= 1.5 {
		t.Fatalf("regression did not recover the upward trend: %g", reg.Q[0])
	}
}

func TestRegressionStableAndDegenerate(t *testing.T) {
	times := []float64{0, 1, 2}
	cfg := DefaultConfig()
	// Stable page: current popularity.
	res, err := EstimateWithRegression([][]float64{{2.0}, {2.01}, {2.02}}, times, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class[0] != ClassStable || res.Q[0] != 2.02 {
		t.Fatalf("stable handling: %v %g", res.Class[0], res.Q[0])
	}
	// Zero baseline: falls back to current.
	res, err = EstimateWithRegression([][]float64{{0}, {1}, {2}}, times, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Q[0] != 2 {
		t.Fatalf("zero-baseline fallback = %g", res.Q[0])
	}
	// Fit crossing zero at t0 (steep collapse): falls back to current.
	res, err = EstimateWithRegression([][]float64{{4}, {1.5}, {0.1}}, times,
		Config{C: 1, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Q[0] < 0 {
		t.Fatalf("negative estimate %g", res.Q[0])
	}
}

func TestRegressionTrendCapAndDecreasingPolicy(t *testing.T) {
	times := []float64{0, 1, 2}
	up := [][]float64{{0.1}, {1.0}, {1.9}} // +1800% trend
	cfg := Config{C: 1, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true, MaxTrend: 0.5}
	res, err := EstimateWithRegression(up, times, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Q[0], 1.9+0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("capped estimate = %g, want %g", got, want)
	}
	down := [][]float64{{2.0}, {1.5}, {1.0}}
	cfg = Config{C: 1, MinChangeFrac: 0.05, ApplyTrendToDecreasing: false}
	res, err = EstimateWithRegression(down, times, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Q[0] != 1.0 {
		t.Fatalf("decreasing page with trend off = %g, want 1.0", res.Q[0])
	}
}

// On a noisy synthetic series, the regression estimator predicts the
// future value at least as well as the endpoint estimator on average.
func TestRegressionBeatsEndpointUnderNoise(t *testing.T) {
	// Five noisy crawls of pages with genuine linear trends. The endpoint
	// estimator (a) only sees two of the five observations and (b) drops
	// to the I := 0 fallback for the many pages that noise makes
	// non-monotone; the least-squares fit uses every crawl.
	rng := rand.New(rand.NewSource(4))
	const pages = 2000
	times := []float64{0, 2, 4, 6, 8}
	future := make([]float64, pages)
	ranks := make([][]float64, len(times))
	for k := range ranks {
		ranks[k] = make([]float64, pages)
	}
	for i := 0; i < pages; i++ {
		base := 0.8 + 0.4*rng.Float64()
		slope := (rng.Float64() - 0.25) * 0.04 // mostly rising, up to +0.03/wk
		for k, tt := range times {
			noise := rng.NormFloat64() * 0.05
			v := base + slope*tt + noise
			if v < 0.05 {
				v = 0.05
			}
			ranks[k][i] = v
		}
		f := base + slope*26
		if f < 0.05 {
			f = 0.05
		}
		future[i] = f
	}
	cfg := Config{C: 2.25, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true, MaxTrend: 1}
	end, err := EstimateFromSeries(ranks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := EstimateWithRegression(ranks, times, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var errEnd, errReg float64
	n := 0
	for i := 0; i < pages; i++ {
		if !end.Changed[i] {
			continue
		}
		errEnd += math.Abs(end.Q[i]-future[i]) / future[i]
		errReg += math.Abs(reg.Q[i]-future[i]) / future[i]
		n++
	}
	if n < 500 {
		t.Fatalf("only %d changed pages", n)
	}
	if errReg >= errEnd {
		t.Fatalf("regression %.4f not below endpoint %.4f under noise", errReg/float64(n), errEnd/float64(n))
	}
}
