package quality

import (
	"fmt"
	"math"
)

// EstimateWithRegression is the smoothed variant of the estimator that
// §9.1's statistical-noise discussion motivates: instead of the raw
// endpoint difference ΔPR = PR(t_k) − PR(t_1) — which a single noisy
// crawl can corrupt, and which is undefined for fluctuating pages — it
// fits a least-squares line through the page's whole popularity series
// and plugs the *fitted* endpoints into the paper's formula:
//
//	Q(p) = C · (P̂(t_k) - P̂(t_1)) / P̂(t_1) + PR(t_k)
//
// Fluctuating pages get a meaningful trend instead of the I := 0
// fallback, because the fit averages the fluctuation away. times[k] is
// the crawl time of ranks[k]; at least three snapshots are required (two
// points determine a line exactly, recovering the endpoint estimator).
func EstimateWithRegression(ranks [][]float64, times []float64, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(ranks) < 3 {
		return nil, fmt.Errorf("%w: regression needs >= 3 snapshots, got %d", ErrBadInput, len(ranks))
	}
	if len(times) != len(ranks) {
		return nil, fmt.Errorf("%w: %d times for %d snapshots", ErrBadInput, len(times), len(ranks))
	}
	for k := 1; k < len(times); k++ {
		if times[k] <= times[k-1] {
			return nil, fmt.Errorf("%w: times not strictly increasing at %d", ErrBadInput, k)
		}
	}
	n := len(ranks[0])
	for k, r := range ranks {
		if len(r) != n {
			return nil, fmt.Errorf("%w: snapshot %d has %d pages, want %d", ErrBadInput, k, len(r), n)
		}
	}

	res := &Result{
		Q:       make([]float64, n),
		Class:   make([]Class, n),
		Changed: make([]bool, n),
		Counts:  make(map[Class]int),
	}
	last := len(ranks) - 1

	// Precompute the time moments of the regression.
	k := float64(len(times))
	var sumT, sumTT float64
	for _, t := range times {
		sumT += t
		sumTT += t * t
	}
	den := k*sumTT - sumT*sumT

	for i := 0; i < n; i++ {
		first := ranks[0][i]
		cur := ranks[last][i]
		cls := classify(ranks, i, cfg.MinChangeFrac)
		res.Class[i] = cls
		res.Counts[cls]++
		if first > 0 {
			res.Changed[i] = math.Abs(cur-first)/first > cfg.MinChangeFrac
		}
		if res.Changed[i] {
			res.NumChanged++
		}

		if cls == ClassStable || first <= 0 {
			res.Q[i] = cur
			continue
		}
		// Least-squares fit y = a + b·t over the page's series.
		var sumY, sumTY float64
		for kk, t := range times {
			y := ranks[kk][i]
			sumY += y
			sumTY += t * y
		}
		b := (k*sumTY - sumT*sumY) / den
		a := (sumY - b*sumT) / k
		fitFirst := a + b*times[0]
		fitLast := a + b*times[last]
		if fitFirst <= 0 {
			// Degenerate fit (line crosses zero inside the window): fall
			// back to the current popularity, as the paper does for
			// unmeasurable trends.
			res.Q[i] = cur
			continue
		}
		trend := (fitLast - fitFirst) / fitFirst
		if cfg.MaxTrend > 0 {
			trend = math.Max(-cfg.MaxTrend, math.Min(cfg.MaxTrend, trend))
		}
		if cls == ClassDecreasing && !cfg.ApplyTrendToDecreasing {
			res.Q[i] = cur
			continue
		}
		res.Q[i] = cfg.C*trend + cur
		if res.Q[i] < 0 {
			res.Q[i] = 0
		}
	}
	return res, nil
}
