package quality_test

import (
	"fmt"

	"pagequality/internal/quality"
)

// Three crawls of a four-page Web: one page rising, one falling, one
// noisy, one static. The estimator extrapolates the trends and falls
// back to the current value where no trend is measurable.
func ExampleEstimateFromSeries() {
	ranks := [][]float64{
		{0.50, 2.00, 1.00, 1.00}, // t1
		{0.65, 1.70, 1.30, 1.01}, // t2
		{0.80, 1.40, 1.10, 1.00}, // t3
	}
	res, err := quality.EstimateFromSeries(ranks, quality.DefaultConfig())
	if err != nil {
		panic(err)
	}
	names := []string{"riser", "faller", "noisy", "static"}
	for i, n := range names {
		fmt.Printf("%-7s %-11s PR=%.2f Q=%.3f\n", n, res.Class[i], ranks[2][i], res.Q[i])
	}
	// Output:
	// riser   increasing  PR=0.80 Q=0.860
	// faller  decreasing  PR=1.40 Q=1.370
	// noisy   fluctuating PR=1.10 Q=1.100
	// static  stable      PR=1.00 Q=1.000
}
