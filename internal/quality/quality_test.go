package quality

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"pagequality/internal/graph"
	"pagequality/internal/model"
	"pagequality/internal/pagerank"
	"pagequality/internal/snapshot"
)

func TestConfigDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.C != 0.1 || cfg.MinChangeFrac != 0.05 || !cfg.ApplyTrendToDecreasing {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := EstimateFromSeries([][]float64{{1}, {1}}, Config{C: -1}); !errors.Is(err, ErrBadInput) {
		t.Fatal("negative C accepted")
	}
	if _, err := EstimateFromSeries([][]float64{{1}, {1}}, Config{MinChangeFrac: -1}); !errors.Is(err, ErrBadInput) {
		t.Fatal("negative MinChangeFrac accepted")
	}
}

func TestSeriesValidation(t *testing.T) {
	if _, err := EstimateFromSeries([][]float64{{1, 2}}, DefaultConfig()); !errors.Is(err, ErrBadInput) {
		t.Fatal("single snapshot accepted")
	}
	if _, err := EstimateFromSeries([][]float64{{1, 2}, {1}}, DefaultConfig()); !errors.Is(err, ErrBadInput) {
		t.Fatal("ragged snapshots accepted")
	}
}

func TestPaperFormula(t *testing.T) {
	// One page with PR(t1)=1.0, PR(t2)=1.2, PR(t3)=1.5:
	// Q = 0.1*(1.5-1.0)/1.0 + 1.5 = 1.55.
	ranks := [][]float64{{1.0}, {1.2}, {1.5}}
	res, err := EstimateFromSeries(ranks, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Class[0] != ClassIncreasing {
		t.Fatalf("class = %v", res.Class[0])
	}
	if math.Abs(res.Q[0]-1.55) > 1e-12 {
		t.Fatalf("Q = %g, want 1.55", res.Q[0])
	}
	if !res.Changed[0] || res.NumChanged != 1 {
		t.Fatal("changed flag wrong")
	}
}

func TestStablePageEqualsCurrentPR(t *testing.T) {
	// "Our quality estimator becomes the same as the current PageRank if
	// the PageRank of a page does not change between t1 and t3."
	ranks := [][]float64{{2.0}, {2.02}, {2.04}} // 2% change, below 5% filter
	res, err := EstimateFromSeries(ranks, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Class[0] != ClassStable {
		t.Fatalf("class = %v, want stable", res.Class[0])
	}
	if res.Q[0] != 2.04 {
		t.Fatalf("Q = %g, want current PR 2.04", res.Q[0])
	}
	if res.Changed[0] || res.NumChanged != 0 {
		t.Fatal("stable page flagged as changed")
	}
}

func TestFluctuatingPageFallsBack(t *testing.T) {
	// "For these pages, we assumed that I(p,t) = 0 for our quality
	// estimator" (§9.1): up from t1 to t2, down from t2 to t3.
	ranks := [][]float64{{1.0}, {1.6}, {1.2}}
	res, err := EstimateFromSeries(ranks, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Class[0] != ClassFluctuating {
		t.Fatalf("class = %v, want fluctuating", res.Class[0])
	}
	if res.Q[0] != 1.2 {
		t.Fatalf("Q = %g, want current PR 1.2", res.Q[0])
	}
	if !res.Changed[0] {
		t.Fatal("20% net change not flagged")
	}
}

func TestDecreasingPage(t *testing.T) {
	ranks := [][]float64{{2.0}, {1.5}, {1.0}}
	// With trend: Q = 0.1*(1.0-2.0)/2.0 + 1.0 = 0.95.
	res, err := EstimateFromSeries(ranks, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Class[0] != ClassDecreasing {
		t.Fatalf("class = %v", res.Class[0])
	}
	if math.Abs(res.Q[0]-0.95) > 1e-12 {
		t.Fatalf("Q = %g, want 0.95", res.Q[0])
	}
	// Without trend, decreasing pages fall back to current PR.
	cfg := DefaultConfig()
	cfg.ApplyTrendToDecreasing = false
	res, err = EstimateFromSeries(ranks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Q[0] != 1.0 {
		t.Fatalf("Q without trend = %g, want 1.0", res.Q[0])
	}
}

func TestNegativeEstimateClamped(t *testing.T) {
	// Extreme collapse with large C would go negative; it must clamp at 0.
	ranks := [][]float64{{1.0}, {0.5}, {0.01}}
	res, err := EstimateFromSeries(ranks, Config{C: 10, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Q[0] != 0 {
		t.Fatalf("Q = %g, want clamp at 0", res.Q[0])
	}
}

// TestRisingStarFromZeroBaseline is the regression test for the bug where
// pages born between t1 and t3 — the paper's motivating rising stars,
// whose popularity starts at 0 — were silently dropped from the
// evaluation set (Changed was never set when ranks[0][i] == 0).
func TestRisingStarFromZeroBaseline(t *testing.T) {
	ranks := [][]float64{{0}, {0.2}, {0.4}}
	res, err := EstimateFromSeries(ranks, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Changed[0] || res.NumChanged != 1 {
		t.Fatal("rising star born during the window not flagged as changed")
	}
	if res.Class[0] != ClassIncreasing {
		t.Fatalf("class = %v, want increasing", res.Class[0])
	}
	// Trend is measured from the first positive snapshot (0.2):
	// Q = 0.1·(0.4-0.2)/0.2 + 0.4 = 0.5.
	if math.Abs(res.Q[0]-0.5) > 1e-12 {
		t.Fatalf("Q = %g, want 0.5", res.Q[0])
	}
}

func TestZeroBaselineEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name        string
		series      []float64
		wantClass   Class
		wantChanged bool
		wantQ       float64
	}{
		// Only the last snapshot is positive: trend 0, Q = current.
		{"born at the end", []float64{0, 0, 0.4}, ClassIncreasing, true, 0.4},
		// Leading zeros then growth: non-decreasing, still increasing.
		{"late bloomer", []float64{0, 0, 0.2, 0.4}, ClassIncreasing, true, 0.5},
		// Born then died back to zero: fluctuating, net change zero.
		{"born and died", []float64{0, 1, 0}, ClassFluctuating, false, 0},
		// Born then declined but still positive: fluctuating, changed.
		{"born then declined", []float64{0, 0.4, 0.2}, ClassFluctuating, true, 0.2},
		// Never any popularity: stable, nothing to evaluate.
		{"all zero", []float64{0, 0, 0}, ClassStable, false, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ranks := make([][]float64, len(tc.series))
			for k, v := range tc.series {
				ranks[k] = []float64{v}
			}
			res, err := EstimateFromSeries(ranks, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if res.Class[0] != tc.wantClass {
				t.Fatalf("class = %v, want %v", res.Class[0], tc.wantClass)
			}
			if res.Changed[0] != tc.wantChanged {
				t.Fatalf("changed = %v, want %v", res.Changed[0], tc.wantChanged)
			}
			if math.Abs(res.Q[0]-tc.wantQ) > 1e-12 {
				t.Fatalf("Q = %g, want %g", res.Q[0], tc.wantQ)
			}
		})
	}
}

// TestExplicitZeroCIsPurePopularity guards the C = 0 endpoint of Ablation
// A: an explicit C of zero must survive fill (not be rewritten to the 0.1
// default) so the estimator degenerates to the current popularity exactly.
func TestExplicitZeroCIsPurePopularity(t *testing.T) {
	ranks := [][]float64{{1.0}, {1.2}, {1.5}}
	res, err := EstimateFromSeries(ranks, Config{C: 0, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class[0] != ClassIncreasing {
		t.Fatalf("class = %v", res.Class[0])
	}
	if res.Q[0] != 1.5 {
		t.Fatalf("Q = %g, want exactly the current popularity 1.5", res.Q[0])
	}
}

func TestCountsAndClasses(t *testing.T) {
	ranks := [][]float64{
		{1.0, 2.0, 1.0, 3.0},
		{1.2, 1.5, 1.6, 3.01},
		{1.5, 1.0, 1.2, 3.0},
	}
	res, err := EstimateFromSeries(ranks, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := []Class{ClassIncreasing, ClassDecreasing, ClassFluctuating, ClassStable}
	for i, w := range want {
		if res.Class[i] != w {
			t.Fatalf("page %d class = %v, want %v", i, res.Class[i], w)
		}
	}
	if res.Counts[ClassIncreasing] != 1 || res.Counts[ClassStable] != 1 ||
		res.Counts[ClassDecreasing] != 1 || res.Counts[ClassFluctuating] != 1 {
		t.Fatalf("counts = %v", res.Counts)
	}
	if res.NumChanged != 3 {
		t.Fatalf("NumChanged = %d, want 3", res.NumChanged)
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassStable: "stable", ClassIncreasing: "increasing",
		ClassDecreasing: "decreasing", ClassFluctuating: "fluctuating",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
	if Class(9).String() == "" {
		t.Error("unknown class empty string")
	}
}

// Property: the estimate of an increasing page always exceeds its current
// popularity (the trend term is positive), and for C=0 it equals it.
func TestQuickIncreasingEstimateAboveCurrent(t *testing.T) {
	f := func(base, g1, g2 float64) bool {
		b := 0.1 + math.Abs(math.Mod(base, 10))
		p1 := b * (1.07 + math.Abs(math.Mod(g1, 1)))
		p2 := p1 * (1.07 + math.Abs(math.Mod(g2, 1)))
		ranks := [][]float64{{b}, {p1}, {p2}}
		res, err := EstimateFromSeries(ranks, DefaultConfig())
		if err != nil || res.Class[0] != ClassIncreasing {
			return false
		}
		if res.Q[0] <= p2 {
			return false
		}
		res0, err := EstimateFromSeries(ranks, Config{C: 1e-300, MinChangeFrac: 0.05})
		if err != nil {
			return false
		}
		return math.Abs(res0.Q[0]-p2) < 1e-9*p2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// End-to-end consistency with the analytic model: feed the estimator a
// popularity trajectory sampled from Theorem 1 and check it recovers Q
// better than the raw popularity does, early in the page's life.
func TestEstimatorBeatsPopularityOnModelTrajectory(t *testing.T) {
	p := model.Params{Q: 0.3, N: 1e8, R: 1e8, P0: 1e-6}
	// Snapshots at weeks 30..32 (early expansion). The gaps must be short
	// enough that ΔPR/PR(t1) first-order-approximates the derivative — the
	// same regime as the paper's monthly crawls against slow PR drift.
	t1, t2, t3 := 30.0, 31.0, 32.0
	ranks := [][]float64{
		{p.PopularityAt(t1)},
		{p.PopularityAt(t2)},
		{p.PopularityAt(t3)},
	}
	// The continuous-time constant (n/r)/(t3-t1) maps the discrete
	// difference onto I(p,t); using C tuned to the snapshot gap.
	cfg := Config{C: p.N / p.R / (t3 - t1), MinChangeFrac: 0.05, ApplyTrendToDecreasing: true}
	res, err := EstimateFromSeries(ranks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	estErr := math.Abs(res.Q[0] - p.Q)
	popErr := math.Abs(ranks[2][0] - p.Q)
	if estErr >= popErr {
		t.Fatalf("estimator error %g not below popularity error %g", estErr, popErr)
	}
}

func alignedFixture(t *testing.T) *snapshot.Aligned {
	t.Helper()
	mk := func(links [][2]int) *graph.Graph {
		g := graph.New(5)
		for i := 0; i < 5; i++ {
			g.MustAddPage(graph.Page{URL: string(rune('a' + i))})
		}
		for _, l := range links {
			g.AddLink(graph.NodeID(l[0]), graph.NodeID(l[1]))
		}
		return g
	}
	// Page e (index 4) steadily gains in-links; page a stays static.
	snaps := []snapshot.Snapshot{
		{Label: "t1", Time: 0, Graph: mk([][2]int{{0, 1}, {1, 0}, {0, 4}})},
		{Label: "t2", Time: 4, Graph: mk([][2]int{{0, 1}, {1, 0}, {0, 4}, {1, 4}})},
		{Label: "t3", Time: 8, Graph: mk([][2]int{{0, 1}, {1, 0}, {0, 4}, {1, 4}, {2, 4}})},
		{Label: "t4", Time: 26, Graph: mk([][2]int{{0, 1}, {1, 0}, {0, 4}, {1, 4}, {2, 4}, {3, 4}})},
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		t.Fatal(err)
	}
	return al
}

func TestFromAligned(t *testing.T) {
	al := alignedFixture(t)
	res, ranks, err := FromAligned(al, 3, pagerank.Options{Variant: pagerank.VariantPaper}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 4 || len(res.Q) != 5 {
		t.Fatalf("shapes: %d snapshots, %d pages", len(ranks), len(res.Q))
	}
	// Page e gains links: increasing class, estimate above current PR, and
	// closer to the future PR than the current PR is.
	e := 4
	if res.Class[e] != ClassIncreasing {
		t.Fatalf("page e class = %v", res.Class[e])
	}
	if res.Q[e] <= ranks[2][e] {
		t.Fatalf("estimate %g not above current PR %g", res.Q[e], ranks[2][e])
	}
	future := ranks[3][e]
	if math.Abs(res.Q[e]-future) >= math.Abs(ranks[2][e]-future) {
		t.Fatalf("estimate %g not closer to future %g than current %g",
			res.Q[e], future, ranks[2][e])
	}
	if _, _, err := FromAligned(al, 1, pagerank.Options{}, DefaultConfig()); !errors.Is(err, ErrBadInput) {
		t.Fatal("estimationSnaps=1 accepted")
	}
	if _, _, err := FromAligned(al, 9, pagerank.Options{}, DefaultConfig()); !errors.Is(err, ErrBadInput) {
		t.Fatal("estimationSnaps beyond series accepted")
	}
}

// TestFromAlignedIncremental pins the incremental pipeline's estimate to
// the full pipeline's within the PageRank convergence tolerance.
func TestFromAlignedIncremental(t *testing.T) {
	al := alignedFixture(t)
	opts := pagerank.Options{Variant: pagerank.VariantPaper}
	full, fullRanks, err := FromAligned(al, 3, opts, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inc, incRanks, err := FromAlignedIncremental(al, 3, pagerank.IncrementalOptions{Options: opts}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(incRanks) != len(fullRanks) || len(inc.Q) != len(full.Q) {
		t.Fatalf("shapes differ: %d/%d snapshots, %d/%d pages",
			len(incRanks), len(fullRanks), len(inc.Q), len(full.Q))
	}
	for i := range full.Q {
		if d := math.Abs(inc.Q[i] - full.Q[i]); d > 1e-6 {
			t.Fatalf("Q[%d] differs by %g (%g vs %g)", i, d, inc.Q[i], full.Q[i])
		}
		if inc.Class[i] != full.Class[i] {
			t.Fatalf("Class[%d] differs: %v vs %v", i, inc.Class[i], full.Class[i])
		}
	}
	if _, _, err := FromAlignedIncremental(al, 1, pagerank.IncrementalOptions{}, DefaultConfig()); !errors.Is(err, ErrBadInput) {
		t.Fatal("estimationSnaps=1 accepted")
	}
}

func BenchmarkEstimateFromSeries(b *testing.B) {
	n := 100000
	ranks := make([][]float64, 3)
	for k := range ranks {
		ranks[k] = make([]float64, n)
		for i := range ranks[k] {
			ranks[k][i] = 1 + float64(k)*0.3 + float64(i%7)*0.01
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateFromSeries(ranks, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
