package quality

import "fmt"

// Live applies the paper's estimator (Equation 1) between two successive
// PageRank vectors of a *live* graph — the form the search-in-the-loop
// corpus uses at every index refresh, where the only history available is
// the previous refresh's vector. prev may be shorter than cur (pages are
// only ever born, never deleted); the missing entries are treated as
// popularity 0, so newly born pages degenerate to their current PageRank
// exactly as 0→positive pages do in EstimateFromSeries. A nil prev (the
// first refresh, no history yet) returns cur unchanged.
//
// The classification, change filter, trend cap and negative clamp are the
// ones of EstimateFromSeries with a two-snapshot window, so the live
// estimate and the snapshot-series estimate cannot drift apart.
func Live(prev, cur []float64, cfg Config) ([]float64, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if prev == nil {
		return append([]float64(nil), cur...), nil
	}
	if len(prev) > len(cur) {
		return nil, fmt.Errorf("%w: prev has %d pages, cur only %d (pages are never deleted)",
			ErrBadInput, len(prev), len(cur))
	}
	if len(prev) < len(cur) {
		padded := make([]float64, len(cur))
		copy(padded, prev)
		prev = padded
	}
	res, err := EstimateFromSeries([][]float64{prev, cur}, cfg)
	if err != nil {
		return nil, err
	}
	return res.Q, nil
}
