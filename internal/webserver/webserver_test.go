package webserver

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pagequality/internal/graph"
)

func fixture(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4)
	g.MustAddPage(graph.Page{URL: "http://siteA.example/root", Site: 0})
	g.MustAddPage(graph.Page{URL: "http://siteA.example/leaf", Site: 0})
	g.MustAddPage(graph.Page{URL: "http://siteB.example/root", Site: 1})
	g.MustAddPage(graph.Page{URL: "http://siteB.example/leaf", Site: 1})
	g.AddLink(0, 1)
	g.AddLink(2, 3)
	g.AddLink(1, 2) // cross-site
	return g
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := httpGet(ts.Client(), ts.URL+path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := fixture(t)
	if _, err := New(g, []string{"only one"}); err == nil {
		t.Fatal("mismatched texts accepted")
	}
	if _, err := New(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexAndSeeds(t *testing.T) {
	g := fixture(t)
	s, err := New(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body := get(t, ts, "/")
	if code != http.StatusOK {
		t.Fatalf("index status %d", code)
	}
	// One root per site: nodes 0 and 2.
	if !strings.Contains(body, PagePath(0)) || !strings.Contains(body, PagePath(2)) {
		t.Fatalf("index missing roots:\n%s", body)
	}
	if strings.Contains(body, PagePath(1)) {
		t.Fatalf("index lists non-root page:\n%s", body)
	}

	code, body = get(t, ts, "/seeds.txt")
	if code != http.StatusOK {
		t.Fatalf("seeds status %d", code)
	}
	lines := strings.Fields(body)
	if len(lines) != 2 || lines[0] != PagePath(0) || lines[1] != PagePath(2) {
		t.Fatalf("seeds = %v", lines)
	}
}

func TestPageRendering(t *testing.T) {
	g := fixture(t)
	s, err := New(g, []string{"alpha text", "beta text", "gamma text", "delta text"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body := get(t, ts, PagePath(0))
	if code != http.StatusOK {
		t.Fatalf("page status %d", code)
	}
	if !strings.Contains(body, `rel="canonical" href="http://siteA.example/root"`) {
		t.Fatalf("canonical missing:\n%s", body)
	}
	if !strings.Contains(body, "alpha text") {
		t.Fatalf("text missing:\n%s", body)
	}
	if !strings.Contains(body, `href="`+PagePath(1)+`"`) {
		t.Fatalf("out-link missing:\n%s", body)
	}
	if strings.Contains(body, `href="`+PagePath(3)+`"`) {
		t.Fatalf("phantom link rendered:\n%s", body)
	}
}

func TestNotFound(t *testing.T) {
	g := fixture(t)
	s, err := New(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	for _, path := range []string{"/p/99.html", "/p/x.html", "/nope", "/p/1"} {
		if code, _ := get(t, ts, path); code != http.StatusNotFound {
			t.Fatalf("%s -> %d, want 404", path, code)
		}
	}
}

func TestParsePagePath(t *testing.T) {
	id, ok := ParsePagePath(PagePath(42))
	if !ok || id != 42 {
		t.Fatalf("round trip -> (%d,%v)", id, ok)
	}
	for _, bad := range []string{"/p/.html", "/p/-1.html", "/x/1.html", "/p/1.txt", "/p/99999999999999999999.html"} {
		if _, ok := ParsePagePath(bad); ok {
			t.Fatalf("ParsePagePath accepted %q", bad)
		}
	}
}

func TestHTMLEscaping(t *testing.T) {
	g := graph.New(1)
	g.MustAddPage(graph.Page{URL: `http://x/<script>"`, Site: 0})
	s, err := New(g, []string{`<b>&`})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	_, body := get(t, ts, PagePath(0))
	if strings.Contains(body, "<script>") {
		t.Fatalf("unescaped URL:\n%s", body)
	}
	if strings.Contains(body, "<b>&") {
		t.Fatalf("unescaped text:\n%s", body)
	}
}

// httpGet issues a GET carrying an explicit context, so test traffic
// meets the same ctxhttp cancellation discipline as the library it
// exercises.
func httpGet(c *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}
