package webserver

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
}

func TestFaultsValidation(t *testing.T) {
	if _, err := WithFaults(nil, FaultConfig{}); err == nil {
		t.Fatal("nil handler accepted")
	}
	bad := []FaultConfig{
		{ErrorRate: -0.1},
		{ErrorRate: 1.5},
		{RateLimitRate: 2},
		{TimeoutRate: -1},
		{ErrorRate: 0.5, RateLimitRate: 0.4, TimeoutRate: 0.3}, // sum > 1
		{Latency: -time.Second},
	}
	for _, cfg := range bad {
		if _, err := WithFaults(okHandler(), cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if _, err := WithFaults(okHandler(), FaultConfig{ErrorRate: 0.5, RateLimitRate: 0.5}); err != nil {
		t.Fatalf("rates summing to exactly 1 rejected: %v", err)
	}
}

func TestFaultsActive(t *testing.T) {
	if (FaultConfig{}).Active() {
		t.Fatal("zero config active")
	}
	for _, cfg := range []FaultConfig{
		{ErrorRate: 0.1}, {RateLimitRate: 0.1}, {TimeoutRate: 0.1}, {Latency: time.Millisecond},
	} {
		if !cfg.Active() {
			t.Fatalf("config %+v inactive", cfg)
		}
	}
}

func TestFaultsPassthroughWhenInactive(t *testing.T) {
	f, err := WithFaults(okHandler(), FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		f.ServeHTTP(rec, httptest.NewRequest("GET", "/p/1.html", nil))
		if rec.Code != http.StatusOK || rec.Body.String() != "ok" {
			t.Fatalf("request %d: %d %q", i, rec.Code, rec.Body.String())
		}
	}
	if s := f.Stats(); s.Served != 50 || s.Errors != 0 || s.RateLimited != 0 || s.Timeouts != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// sequence replays n requests for path against a fresh middleware and
// returns the status codes in arrival order.
func sequence(t *testing.T, cfg FaultConfig, path string, n int) []int {
	t.Helper()
	f, err := WithFaults(okHandler(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	codes := make([]int, n)
	for i := range codes {
		rec := httptest.NewRecorder()
		f.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		codes[i] = rec.Code
	}
	return codes
}

func TestFaultsDeterministicPerPathAttempt(t *testing.T) {
	cfg := FaultConfig{ErrorRate: 0.3, RateLimitRate: 0.2, Seed: 7}
	a := sequence(t, cfg, "/p/1.html", 64)
	b := sequence(t, cfg, "/p/1.html", 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	// The fate sequence depends on the path and the seed.
	other := sequence(t, cfg, "/p/2.html", 64)
	reseeded := sequence(t, FaultConfig{ErrorRate: 0.3, RateLimitRate: 0.2, Seed: 8}, "/p/1.html", 64)
	same := func(x, y []int) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if same(a, other) {
		t.Fatal("distinct paths share their fate sequence")
	}
	if same(a, reseeded) {
		t.Fatal("distinct seeds share their fate sequence")
	}
}

func TestFaultsRatesAndCounters(t *testing.T) {
	cfg := FaultConfig{ErrorRate: 0.4, RateLimitRate: 0.2, Seed: 3}
	const n = 1000
	codes := sequence(t, cfg, "/p/1.html", n)
	var e500, e429, ok int
	for _, c := range codes {
		switch c {
		case http.StatusInternalServerError:
			e500++
		case http.StatusTooManyRequests:
			e429++
		case http.StatusOK:
			ok++
		}
	}
	if e500+e429+ok != n {
		t.Fatalf("unexpected status in %v", codes)
	}
	// Deterministic run: generous +-50% bands just guard the partition
	// arithmetic, not the RNG.
	if e500 < 200 || e500 > 600 {
		t.Fatalf("500s = %d of %d at rate 0.4", e500, n)
	}
	if e429 < 100 || e429 > 300 {
		t.Fatalf("429s = %d of %d at rate 0.2", e429, n)
	}
}

func TestFaultsRateLimitSendsRetryAfter(t *testing.T) {
	f, err := WithFaults(okHandler(), FaultConfig{RateLimitRate: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	f.ServeHTTP(rec, httptest.NewRequest("GET", "/p/1.html", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q", rec.Header().Get("Retry-After"))
	}
	if s := f.Stats(); s.RateLimited != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFaultsTimeoutStallsUntilClientGivesUp(t *testing.T) {
	f, err := WithFaults(okHandler(), FaultConfig{TimeoutRate: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(f)
	defer ts.Close()
	client := &http.Client{Timeout: 50 * time.Millisecond}
	start := time.Now() //pqlint:allow walltime the property under test is real elapsed time against an injected stall
	_, err = httpGet(client, ts.URL+"/p/1.html")
	if err == nil {
		t.Fatal("stalled request succeeded")
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond { //pqlint:allow walltime real elapsed time is the assertion
		t.Fatalf("request failed after %v, before the client timeout", elapsed)
	}
	if s := f.Stats(); s.Timeouts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFaultsLatencyDelaysResponse(t *testing.T) {
	f, err := WithFaults(okHandler(), FaultConfig{Latency: 30 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(f)
	defer ts.Close()
	start := time.Now() //pqlint:allow walltime the property under test is real injected latency
	resp, err := httpGet(ts.Client(), ts.URL+"/p/1.html")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond { //pqlint:allow walltime real elapsed time is the assertion
		t.Fatalf("response arrived after %v, before the injected latency", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
