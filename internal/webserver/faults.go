package webserver

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pagequality/internal/randx"
)

// FaultConfig parameterises the deterministic fault-injection middleware.
// Each incoming request draws once from a stream keyed on (Seed, path,
// per-path request count), so the k-th request for a given path always
// meets the same fate — independent of request interleaving across
// concurrent crawler workers. That is what lets integration tests drive a
// crawl through a failure storm and still assert bitwise graph parity
// with the fault-free crawl: a page that fails on its first attempt
// deterministically succeeds on a later retry.
type FaultConfig struct {
	// ErrorRate is the probability of answering 500 Internal Server Error.
	ErrorRate float64
	// RateLimitRate is the probability of answering 429 Too Many Requests
	// with a Retry-After: 1 header.
	RateLimitRate float64
	// TimeoutRate is the probability of stalling without a response until
	// the client gives up (its request context is cancelled).
	TimeoutRate float64
	// Latency is a fixed delay added to every response that is not an
	// injected fault (zero = no added latency).
	Latency time.Duration
	// Seed keys the decision streams.
	Seed int64
}

// Active reports whether the configuration injects anything at all.
func (c FaultConfig) Active() bool {
	return c.ErrorRate > 0 || c.RateLimitRate > 0 || c.TimeoutRate > 0 || c.Latency > 0
}

func (c FaultConfig) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"ErrorRate", c.ErrorRate}, {"RateLimitRate", c.RateLimitRate}, {"TimeoutRate", c.TimeoutRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("webserver: %s=%g outside [0,1]", r.name, r.v)
		}
	}
	if sum := c.ErrorRate + c.RateLimitRate + c.TimeoutRate; sum > 1 {
		return fmt.Errorf("webserver: fault rates sum to %g > 1", sum)
	}
	if c.Latency < 0 {
		return fmt.Errorf("webserver: negative Latency %v", c.Latency)
	}
	return nil
}

// FaultStats is a snapshot of the middleware's counters.
type FaultStats struct {
	Errors      int64 // injected 500s
	RateLimited int64 // injected 429s
	Timeouts    int64 // stalled requests
	Served      int64 // requests passed through to the inner handler
}

// Faults wraps an http.Handler with deterministic fault injection.
type Faults struct {
	inner http.Handler
	cfg   FaultConfig

	mu      sync.Mutex
	attempt map[string]uint64 // per-path request counter

	errors      atomic.Int64
	rateLimited atomic.Int64
	timeouts    atomic.Int64
	served      atomic.Int64
}

// WithFaults wraps h with the given fault configuration.
func WithFaults(h http.Handler, cfg FaultConfig) (*Faults, error) {
	if h == nil {
		return nil, fmt.Errorf("webserver: WithFaults on nil handler")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Faults{inner: h, cfg: cfg, attempt: make(map[string]uint64)}, nil
}

// Stats returns a snapshot of the fault counters.
func (f *Faults) Stats() FaultStats {
	return FaultStats{
		Errors:      f.errors.Load(),
		RateLimited: f.rateLimited.Load(),
		Timeouts:    f.timeouts.Load(),
		Served:      f.served.Load(),
	}
}

// ServeHTTP implements http.Handler: one uniform draw per request decides
// its fate, partitioned [0,ErrorRate) -> 500, then RateLimitRate -> 429,
// then TimeoutRate -> stall; the rest pass through after Latency.
func (f *Faults) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	f.mu.Lock()
	n := f.attempt[path]
	f.attempt[path] = n + 1
	f.mu.Unlock()
	s := randx.NewStream(f.cfg.Seed, randx.Key(path), n)
	u := randx.Float64(&s)
	switch {
	case u < f.cfg.ErrorRate:
		f.errors.Add(1)
		http.Error(w, "injected fault", http.StatusInternalServerError)
		return
	case u < f.cfg.ErrorRate+f.cfg.RateLimitRate:
		f.rateLimited.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "injected rate limit", http.StatusTooManyRequests)
		return
	case u < f.cfg.ErrorRate+f.cfg.RateLimitRate+f.cfg.TimeoutRate:
		f.timeouts.Add(1)
		// Stall until the client abandons the request; the handler exits
		// as soon as the request context is cancelled, so nothing leaks.
		<-r.Context().Done()
		return
	}
	if f.cfg.Latency > 0 {
		t := time.NewTimer(f.cfg.Latency) //pqlint:allow walltime injecting real latency is this middleware's purpose; cancellable via r.Context()
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
			return
		}
	}
	f.served.Add(1)
	f.inner.ServeHTTP(w, r)
}
