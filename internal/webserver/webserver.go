// Package webserver serves a Web-graph snapshot as a browsable HTML site,
// so the crawler substrate can exercise the paper's actual methodology:
// "we download the Web multiple times ... We downloaded pages from each
// site until we could not reach any more pages" (§8.1). Each page renders
// its synthetic text plus one anchor per out-link, and carries a
// rel=canonical link with the page's stable corpus URL so that crawls of
// different server instances (different ports, different snapshot copies)
// can be aligned.
package webserver

import (
	"errors"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"pagequality/internal/graph"
)

// ErrBadSnapshot reports an unservable snapshot.
var ErrBadSnapshot = errors.New("webserver: bad snapshot")

// Server is an http.Handler exposing one frozen snapshot.
//
//	GET /            index page linking to each site's root page
//	GET /p/<id>.html one page: canonical link, text, out-link anchors
//	GET /seeds.txt   newline-separated root-page paths (crawler seeds)
type Server struct {
	g     *graph.Graph
	texts []string
	roots []graph.NodeID // first page of each site, ascending site order
	// disallow holds the path prefixes served in robots.txt.
	disallow []string
}

// SetRobots configures the path prefixes the server's /robots.txt
// disallows for all user agents. Call before serving; an empty list (the
// default) serves an allow-all robots file.
func (s *Server) SetRobots(disallowPrefixes []string) {
	s.disallow = append([]string(nil), disallowPrefixes...)
}

// New builds a server over the given graph and per-node texts. The graph
// is not copied; freeze or clone it first if the underlying simulation
// keeps evolving. texts may be nil (pages render links only).
func New(g *graph.Graph, texts []string) (*Server, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadSnapshot)
	}
	if texts != nil && len(texts) != g.NumNodes() {
		return nil, fmt.Errorf("%w: %d texts for %d pages", ErrBadSnapshot, len(texts), g.NumNodes())
	}
	s := &Server{g: g, texts: texts}
	// One root per site: the lowest node id of that site.
	seen := map[int32]bool{}
	for i := 0; i < g.NumNodes(); i++ {
		site := g.Page(graph.NodeID(i)).Site
		if !seen[site] {
			seen[site] = true
			s.roots = append(s.roots, graph.NodeID(i))
		}
	}
	sort.Slice(s.roots, func(a, b int) bool { return s.roots[a] < s.roots[b] })
	return s, nil
}

// PagePath returns the served path of node id.
func PagePath(id graph.NodeID) string {
	return fmt.Sprintf("/p/%d.html", id)
}

// ParsePagePath inverts PagePath.
func ParsePagePath(path string) (graph.NodeID, bool) {
	if !strings.HasPrefix(path, "/p/") || !strings.HasSuffix(path, ".html") {
		return 0, false
	}
	n, err := strconv.ParseUint(path[3:len(path)-5], 10, 32)
	if err != nil {
		return 0, false
	}
	return graph.NodeID(n), true
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/":
		s.serveIndex(w)
	case r.URL.Path == "/seeds.txt":
		s.serveSeeds(w)
	case r.URL.Path == "/robots.txt":
		s.serveRobots(w)
	default:
		id, ok := ParsePagePath(r.URL.Path)
		if !ok || int(id) >= s.g.NumNodes() {
			http.NotFound(w, r)
			return
		}
		s.servePage(w, id)
	}
}

func (s *Server) serveIndex(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<!DOCTYPE html><html><head><title>corpus index</title></head><body><h1>Sites</h1><ul>")
	for _, id := range s.roots {
		pg := s.g.Page(id)
		fmt.Fprintf(w, `<li><a href="%s">site %d (%s)</a></li>`,
			PagePath(id), pg.Site, html.EscapeString(pg.URL))
	}
	fmt.Fprint(w, "</ul></body></html>")
}

func (s *Server) serveSeeds(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, id := range s.roots {
		fmt.Fprintln(w, PagePath(id))
	}
}

func (s *Server) serveRobots(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "User-agent: *")
	for _, p := range s.disallow {
		fmt.Fprintf(w, "Disallow: %s\n", p)
	}
}

func (s *Server) servePage(w http.ResponseWriter, id graph.NodeID) {
	pg := s.g.Page(id)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>%s</title>", html.EscapeString(pg.URL))
	if pg.URL != "" {
		fmt.Fprintf(w, `<link rel="canonical" href="%s">`, html.EscapeString(pg.URL))
	}
	fmt.Fprint(w, "</head><body>")
	fmt.Fprintf(w, "<h1>%s</h1>", html.EscapeString(pg.URL))
	if s.texts != nil {
		fmt.Fprintf(w, "<p>%s</p>", html.EscapeString(s.texts[id]))
	}
	fmt.Fprint(w, "<ul>")
	for _, to := range s.g.OutLinks(id) {
		toURL := s.g.Page(to).URL
		fmt.Fprintf(w, `<li><a href="%s">%s</a></li>`,
			PagePath(to), html.EscapeString(toURL))
	}
	fmt.Fprint(w, "</ul></body></html>")
}
