// Package pagequality_test exercises the full pipeline across module
// boundaries: corpus growth → snapshot persistence → reload → alignment →
// PageRank series → quality estimation → evaluation, plus the
// model-vs-simulation consistency loop. These tests complement the
// per-package unit tests by checking that the pieces compose.
package pagequality_test

import (
	"math"
	"path/filepath"
	"testing"

	"pagequality/internal/experiments"
	"pagequality/internal/graph"
	"pagequality/internal/metrics"
	"pagequality/internal/model"
	"pagequality/internal/pagerank"
	"pagequality/internal/quality"
	"pagequality/internal/search"
	"pagequality/internal/snapshot"
	"pagequality/internal/usersim"
	"pagequality/internal/webcorpus"
)

// smallCorpus is the shared fast corpus for integration tests.
func smallCorpus(t *testing.T, seed int64) *webcorpus.Sim {
	t.Helper()
	// Mirror experiments.DefaultHeadlineConfig's corpus shape (aged pages,
	// steady births) at a test-friendly size.
	cfg := webcorpus.DefaultConfig()
	cfg.Sites = 20
	cfg.InitialPagesPerSite = 6
	cfg.BirthRate = 5
	cfg.BurnInWeeks = 40
	cfg.NoiseRate = 0.01
	cfg.ForgetRate = 0.01
	cfg.Seed = seed
	sim, err := webcorpus.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestPipelinePersistReloadEstimate drives the §8 experiment through the
// on-disk store, exactly as the cmd tools do.
func TestPipelinePersistReloadEstimate(t *testing.T) {
	sim := smallCorpus(t, 1)
	snaps, err := sim.RunSchedule(webcorpus.PaperSchedule())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "web.pqs")
	if err := snapshot.WriteFile(path, snaps); err != nil {
		t.Fatal(err)
	}
	loaded, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 4 {
		t.Fatalf("%d snapshots after reload", len(loaded))
	}
	al, err := snapshot.Align(loaded)
	if err != nil {
		t.Fatal(err)
	}
	est, ranks, err := quality.FromAligned(al, 3,
		pagerank.Options{Variant: pagerank.VariantPaper},
		quality.Config{C: 1.0, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true, MaxTrend: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// The estimator must beat current PageRank at predicting the future
	// PageRank over the changed pages, even through a disk round trip.
	future := ranks[3]
	var errQ, errPR []float64
	for i := range est.Q {
		if !est.Changed[i] || future[i] == 0 {
			continue
		}
		q, err := metrics.RelativeError(est.Q[i], future[i])
		if err != nil {
			t.Fatal(err)
		}
		p, err := metrics.RelativeError(ranks[2][i], future[i])
		if err != nil {
			t.Fatal(err)
		}
		errQ = append(errQ, q)
		errPR = append(errPR, p)
	}
	if len(errQ) < 50 {
		t.Fatalf("only %d changed pages", len(errQ))
	}
	sq, err := metrics.Summarize(errQ)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metrics.Summarize(errPR)
	if err != nil {
		t.Fatal(err)
	}
	if sq.Mean >= sp.Mean {
		t.Fatalf("estimator %.3f not below PageRank %.3f after disk round trip", sq.Mean, sp.Mean)
	}
}

// TestModelChain closes the theory loop: agent simulation → sampled
// trajectory → discrete estimator → recovered quality.
func TestModelChain(t *testing.T) {
	cfg := usersim.Config{
		Users:        20000,
		VisitRate:    20000,
		Quality:      0.35,
		InitialLikes: 100,
		DT:           0.02,
		Seed:         77,
	}
	sim, err := usersim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(25, 100)
	if err != nil {
		t.Fatal(err)
	}
	est, err := model.EstimateFromSamples(tr, float64(cfg.Users), cfg.VisitRate)
	if err != nil {
		t.Fatal(err)
	}
	// Average the interior estimates: they must recover Q within noise.
	sum, n := 0.0, 0
	for i := 2; i < len(est)-2; i++ {
		sum += est[i]
		n++
	}
	if n == 0 {
		t.Fatal("no interior samples")
	}
	if got := sum / float64(n); math.Abs(got-cfg.Quality) > 0.06 {
		t.Fatalf("recovered quality %.3f, want ~%.2f", got, cfg.Quality)
	}
}

// TestSearchOverCorpus wires the corpus text generator into the search
// engine and checks topical retrieval plus authority re-ranking.
func TestSearchOverCorpus(t *testing.T) {
	sim := smallCorpus(t, 2)
	texts := sim.AllTexts(webcorpus.TextOptions{})
	ix := search.NewIndex()
	ix.AddAll(texts)
	if ix.NumDocs() != sim.NumPages() {
		t.Fatalf("indexed %d docs for %d pages", ix.NumDocs(), sim.NumPages())
	}
	topic := webcorpus.SiteTopic(0)
	hits, err := ix.Search(topic, search.Options{TopK: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatalf("no hits for topic %q", topic)
	}
	// Every hit's site must share the queried topic (topical coherence).
	for _, h := range hits {
		site := int(sim.Graph().Page(graph.NodeID(h.Doc)).Site)
		if webcorpus.SiteTopic(site) != topic {
			t.Fatalf("hit %d from site %d with topic %q, want %q",
				h.Doc, site, webcorpus.SiteTopic(site), topic)
		}
	}
	// Authority re-ranking by PageRank keeps the result set topical.
	pr, err := pagerank.Compute(graph.Freeze(sim.Graph()), pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := ix.Search(topic, search.Options{TopK: 20, Authority: pr.Rank, AuthorityWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ranked); i++ {
		if pr.Rank[ranked[i-1].Doc] < pr.Rank[ranked[i].Doc]-1e-12 {
			t.Fatal("authority-weight-1 results not in PageRank order")
		}
	}
}

// TestBowTieOnCorpus sanity-checks the structural analyses against the
// evolved corpus: one dominant weak component and a heavy-tailed in-degree
// distribution.
func TestBowTieOnCorpus(t *testing.T) {
	sim := smallCorpus(t, 3)
	sim.AdvanceTo(10)
	c := graph.Freeze(sim.Graph())
	res := graph.BowTie(c)
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != c.NumNodes() {
		t.Fatalf("bow-tie covers %d of %d nodes", total, c.NumNodes())
	}
	if res.Counts[graph.RegionDisconnected] > c.NumNodes()/4 {
		t.Fatalf("too many disconnected pages: %d", res.Counts[graph.RegionDisconnected])
	}
	// The corpus in-degree is quality-driven (bounded by the Beta quality
	// distribution), not a pure power law like the BA generator, but it
	// must still be strongly skewed.
	degs := graph.Degrees(c, true)
	maxDeg, sum := 0, 0
	for _, d := range degs {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	if mean := float64(sum) / float64(len(degs)); float64(maxDeg) < 2.5*mean {
		t.Fatalf("in-degree not skewed: max %d, mean %.1f", maxDeg, mean)
	}
}

// TestInDegreeSeriesAsPopularity runs the estimator on the footnote-4
// alternative (in-degree instead of PageRank) and checks it still beats
// the baseline.
func TestInDegreeSeriesAsPopularity(t *testing.T) {
	sim := smallCorpus(t, 4)
	snaps, err := sim.RunSchedule(webcorpus.PaperSchedule())
	if err != nil {
		t.Fatal(err)
	}
	al, err := snapshot.Align(snaps)
	if err != nil {
		t.Fatal(err)
	}
	series := al.InDegreeSeries()
	est, err := quality.EstimateFromSeries(series[:3],
		quality.Config{C: 1.0, MinChangeFrac: 0.05, ApplyTrendToDecreasing: true, MaxTrend: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	future := series[3]
	var q, p []float64
	for i := range est.Q {
		if !est.Changed[i] || future[i] == 0 {
			continue
		}
		eq, err := metrics.RelativeError(est.Q[i], future[i])
		if err != nil {
			t.Fatal(err)
		}
		ep, err := metrics.RelativeError(series[2][i], future[i])
		if err != nil {
			t.Fatal(err)
		}
		q = append(q, eq)
		p = append(p, ep)
	}
	if len(q) < 30 {
		t.Fatalf("only %d changed pages", len(q))
	}
	sq, err := metrics.Summarize(q)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metrics.Summarize(p)
	if err != nil {
		t.Fatal(err)
	}
	if sq.Mean >= sp.Mean {
		t.Fatalf("in-degree estimator %.3f not below baseline %.3f", sq.Mean, sp.Mean)
	}
}

// TestHeadlineAcrossSeeds guards against a lucky-seed reproduction: the
// §8.2 shape must hold for several corpus seeds.
func TestHeadlineAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed headline")
	}
	for _, seed := range []int64{1, 2, 3} {
		cfg := experiments.DefaultHeadlineConfig()
		cfg.Corpus.Sites = 30
		cfg.Corpus.BirthRate = 6
		cfg.Corpus.Seed = seed
		res, err := experiments.RunHeadline(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.AvgErrQ >= res.AvgErrPR {
			t.Fatalf("seed %d: estimator %.3f not below PageRank %.3f", seed, res.AvgErrQ, res.AvgErrPR)
		}
		if res.FracFirstQ <= res.FracFirstPR {
			t.Fatalf("seed %d: first bin Q %.2f not above PR %.2f", seed, res.FracFirstQ, res.FracFirstPR)
		}
	}
}
